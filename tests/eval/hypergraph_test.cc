// The join-hypergraph analysis (eval/hypergraph.h) drives plan-shape
// selection: GYO ear removal classifies bodies as acyclic or cyclic, and
// the greedy elimination width estimate separates width-1 (left-deep is
// fine) from width >= 2 (multiway intersection pays off). The goldens
// here pin the classification for the canonical shapes and the
// invariants the selection heuristic relies on.

#include "eval/hypergraph.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

std::vector<PlannedAtom> BodyOf(const std::shared_ptr<SymbolTable>& symbols,
                                const std::string& rule_text) {
  Rule rule = ParseRuleOrDie(symbols, rule_text);
  std::vector<PlannedAtom> atoms;
  for (const Literal& lit : rule.body()) {
    if (!lit.negated) atoms.push_back({lit.atom, AtomSource::kFull});
  }
  return atoms;
}

TEST(HypergraphTest, PathsAndTreesAreAcyclic) {
  auto symbols = MakeSymbols();
  // Two-hop path.
  auto path = BodyOf(symbols, "h(x, z) :- e(x, y), e(y, z).");
  EXPECT_TRUE(GyoAcyclic(BuildJoinHypergraph(path)));
  // Three-hop path.
  auto path3 = BodyOf(symbols, "h(x, w) :- e(x, y), e(y, z), e(z, w).");
  EXPECT_TRUE(GyoAcyclic(BuildJoinHypergraph(path3)));
  // Star (tree of depth 1).
  auto star = BodyOf(symbols, "st(x) :- e(x, a), e(x, b), e(x, c).");
  EXPECT_TRUE(GyoAcyclic(BuildJoinHypergraph(star)));
  // The guarded-TC body from the paper: g(x,y), g(y,z), a(y,w) is a
  // tree around y.
  auto guarded = BodyOf(symbols, "g(x, z) :- g(x, y), g(y, z), a(y, w).");
  EXPECT_TRUE(GyoAcyclic(BuildJoinHypergraph(guarded)));
}

TEST(HypergraphTest, TriangleKCycleAndCliqueAreCyclic) {
  auto symbols = MakeSymbols();
  auto tri = BodyOf(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");
  EXPECT_FALSE(GyoAcyclic(BuildJoinHypergraph(tri)));

  auto cyc4 = BodyOf(
      symbols, "c(a) :- e(a, b), e(b, c), e(c, d), e(d, a).");
  EXPECT_FALSE(GyoAcyclic(BuildJoinHypergraph(cyc4)));

  auto cyc5 = BodyOf(
      symbols, "c(a) :- e(a, b), e(b, c), e(c, d), e(d, f), e(f, a).");
  EXPECT_FALSE(GyoAcyclic(BuildJoinHypergraph(cyc5)));

  auto clique = BodyOf(symbols,
                       "k(x, w) :- e(x, y), e(x, z), e(x, w), e(y, z), "
                       "e(y, w), e(z, w).");
  EXPECT_FALSE(GyoAcyclic(BuildJoinHypergraph(clique)));
}

TEST(HypergraphTest, WidthGoldens) {
  auto symbols = MakeSymbols();
  // Acyclic bodies have width 1.
  auto path = BodyOf(symbols, "h(x, z) :- e(x, y), e(y, z).");
  EXPECT_EQ(EstimateJoinWidth(BuildJoinHypergraph(path)), 1);

  // Triangle and the 4-cycle need two edges per eliminated vertex.
  auto tri = BodyOf(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");
  EXPECT_EQ(EstimateJoinWidth(BuildJoinHypergraph(tri)), 2);
  auto cyc4 = BodyOf(
      symbols, "c(a) :- e(a, b), e(b, c), e(c, d), e(d, a).");
  EXPECT_EQ(EstimateJoinWidth(BuildJoinHypergraph(cyc4)), 2);

  // The 4-clique: a bag holds all four vertices; ceil(4/2) binary edges
  // cover it.
  auto clique = BodyOf(symbols,
                       "k(x, w) :- e(x, y), e(x, z), e(x, w), e(y, z), "
                       "e(y, w), e(z, w).");
  EXPECT_EQ(EstimateJoinWidth(BuildJoinHypergraph(clique)), 2);
}

/// Width never decreases when an edge is added to the same vertex set
/// (monotonicity of the estimate under densification): spot-checked on
/// the k-cycle family as k grows and as chords are added.
TEST(HypergraphTest, WidthEstimateMonotoneUnderAddedEdges) {
  auto symbols = MakeSymbols();
  auto cyc4 = BodyOf(
      symbols, "c(a) :- e(a, b), e(b, c), e(c, d), e(d, a).");
  const int base = EstimateJoinWidth(BuildJoinHypergraph(cyc4));
  // Add a chord: still cyclic, width can only stay or grow.
  auto chord = BodyOf(
      symbols, "c(a) :- e(a, b), e(b, c), e(c, d), e(d, a), e(a, c).");
  EXPECT_GE(EstimateJoinWidth(BuildJoinHypergraph(chord)), base);
  // Densify to the 4-clique.
  auto k4 = BodyOf(symbols,
                   "c(a) :- e(a, b), e(b, c), e(c, d), e(d, a), e(a, c), "
                   "e(b, d).");
  EXPECT_GE(EstimateJoinWidth(BuildJoinHypergraph(k4)),
            EstimateJoinWidth(BuildJoinHypergraph(chord)));
}

TEST(HypergraphTest, DegenerateGraphs) {
  JoinHypergraph empty;
  EXPECT_TRUE(GyoAcyclic(empty));
  EXPECT_EQ(EstimateJoinWidth(empty), 0);

  JoinHypergraph single;
  single.num_vertices = 3;
  single.edges = {{0, 1, 2}};
  EXPECT_TRUE(GyoAcyclic(single));
  EXPECT_EQ(EstimateJoinWidth(single), 1);

  // Two identical edges reduce to one.
  JoinHypergraph dup;
  dup.num_vertices = 2;
  dup.edges = {{0, 1}, {0, 1}};
  EXPECT_TRUE(GyoAcyclic(dup));
}

/// Property: the selection heuristic never chooses multiway for a body
/// with fewer than three atoms, no matter how the two atoms overlap.
TEST(HypergraphTest, NeverEligibleBelowThreeAtoms) {
  auto symbols = MakeSymbols();
  const char* two_atom_rules[] = {
      "h(x, y) :- e(x, y), e(y, x).",        // 2-cycle
      "h1(x) :- e(x, x), s(x).",             // self loop + guard
      "h(x, z) :- e(x, y), e(y, z).",        // path
      "h(x, y) :- e(x, y), f(x, y).",        // parallel edges
  };
  for (const char* text : two_atom_rules) {
    auto body = BodyOf(symbols, text);
    EXPECT_FALSE(MultiwayEligibleBody(body)) << text;
  }
  auto one = BodyOf(symbols, "h(x, y) :- e(x, y).");
  EXPECT_FALSE(MultiwayEligibleBody(one));
}

TEST(HypergraphTest, EligibilityGoldens) {
  auto symbols = MakeSymbols();
  // Cyclic, width 2, three atoms: eligible.
  auto tri = BodyOf(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");
  EXPECT_TRUE(MultiwayEligibleBody(tri));
  // Acyclic three-atom bodies are not.
  auto path3 = BodyOf(symbols, "h(x, w) :- e(x, y), e(y, z), e(z, w).");
  EXPECT_FALSE(MultiwayEligibleBody(path3));
  auto guarded = BodyOf(symbols, "g(x, z) :- g(x, y), g(y, z), a(y, w).");
  EXPECT_FALSE(MultiwayEligibleBody(guarded));
  // A constant-only atom in an otherwise cyclic body kills eligibility
  // (every atom must contribute a variable to intersect on).
  auto with_const = BodyOf(
      symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x), f(1, 2).");
  EXPECT_FALSE(MultiwayEligibleBody(with_const));
}

}  // namespace
}  // namespace datalog
