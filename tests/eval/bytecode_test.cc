// The bytecode layer's own contract tests: lowered programs always
// validate; the versioned binary encoding round-trips; and a decoded
// program is executable -- same MatchStats, same derived facts, same
// insertion order -- as the in-memory program it was serialized from,
// on a corpus of representative plan shapes and on generator-driven
// random programs (the "shippable plans" property the server workers
// rely on; see docs/bytecode_vm.md).

#include "eval/bytecode/bytecode.h"

#include <cstdint>
#include <string>
#include <vector>

#include "eval/compiled_rule.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

struct KnobGuard {
  ~KnobGuard() {
    SetCompiledRulePlans(true);
    SetColumnarStorage(true);
    SetMultiwayJoins(true);
    SetBytecodeExecution(true);
    SetIndexLookups(true);
    SetGreedyJoinOrdering(true);
  }
};

TEST(BytecodeTest, KnobDefaultsOn) { EXPECT_TRUE(BytecodeExecutionEnabled()); }

/// Runs `program` against (full, delta, old_limits) into a fresh copy of
/// `out_base`, returning the stats, the new-fact count, and the result.
struct RunOutcome {
  bool ok = false;
  MatchStats stats;
  std::size_t new_facts = 0;
  Database out;
};

RunOutcome RunProgram(const bytecode::Program& program, const Database& full,
                      const Database* delta, const OldLimits* old_limits,
                      const Database& out_base) {
  RunOutcome r{false, MatchStats{}, 0, Database(out_base.symbols())};
  r.out.UnionWith(out_base);
  r.ok = bytecode::Run(program, full, delta, old_limits, &r.out, &r.stats,
                       &r.new_facts);
  return r;
}

void ExpectRoundTripExecutes(const CompiledRule& plan, const Database& full,
                             const Database* delta,
                             const OldLimits* old_limits,
                             const std::string& label) {
  const bytecode::Program& original = plan.bytecode_program();
  ASSERT_FALSE(original.empty()) << label;

  std::string error;
  EXPECT_TRUE(bytecode::Validate(original, &error))
      << label << ": lowered program rejected: " << error;

  const std::vector<std::uint8_t> bytes = bytecode::Encode(original);
  bytecode::Program decoded;
  ASSERT_TRUE(bytecode::Decode(bytes.data(), bytes.size(), &decoded, &error))
      << label << ": " << error;
  EXPECT_TRUE(bytecode::Validate(decoded, &error))
      << label << ": decoded program rejected: " << error;

  // Re-encoding the decoded program must reproduce the bytes exactly
  // (the format has a canonical encoding).
  EXPECT_EQ(bytecode::Encode(decoded), bytes) << label;

  RunOutcome a = RunProgram(original, full, delta, old_limits, full);
  RunOutcome b = RunProgram(decoded, full, delta, old_limits, full);
  ASSERT_TRUE(a.ok) << label;
  ASSERT_TRUE(b.ok) << label;
  EXPECT_EQ(a.new_facts, b.new_facts) << label;
  EXPECT_EQ(a.stats.substitutions, b.stats.substitutions) << label;
  EXPECT_EQ(a.stats.index_lookups, b.stats.index_lookups) << label;
  EXPECT_EQ(a.stats.tuples_scanned, b.stats.tuples_scanned) << label;
  EXPECT_EQ(a.out, b.out) << label << ": decoded program derived different "
                          << "facts than the in-memory program";
}

TEST(BytecodeTest, RoundTripOnCorpusPlanShapes) {
  // One plan per shape the lowering handles: unbound scans, indexed
  // probes, delta/old sources, constants, repeated variables, negation,
  // and the leapfrog multiway schedule.
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols,
                                   "a(1, 2). a(2, 3). a(3, 1). a(2, 2).\n"
                                   "g(1, 2). g(2, 3).\n"
                                   "b(2, 3).\n"
                                   "e(1, 2). e(2, 3). e(3, 1). e(1, 3).\n"
                                   "up(1, 2). up(2, 3). down(3, 4).\n"
                                   "flat(2, 2). flat(3, 3).\n");
  Database delta(symbols);
  delta.AddFact(symbols->LookupPredicate("g").value(),
                {Value::Int(2), Value::Int(3)});

  struct Case {
    const char* label;
    const char* rule;
    std::size_t delta_pos;
    bool use_old;
  };
  const Case cases[] = {
      {"tc-join", "h0(x, z) :- a(x, y), g(y, z).", std::size_t(-1), false},
      {"tc-delta", "h1(x, z) :- a(x, y), g(y, z).", 1, false},
      {"tc-delta-old", "h2(x, z) :- g(x, y), g(y, z).", 0, true},
      {"const-filter", "h3(x, y) :- a(x, y), g(2, y).", std::size_t(-1),
       false},
      {"repeated-var", "h4(x) :- a(x, x).", std::size_t(-1), false},
      {"negation", "h5(x, y) :- a(x, y), not b(x, y).", std::size_t(-1),
       false},
      {"same-gen", "h6(x, y) :- up(x, u), g(u, v), down(v, y).",
       std::size_t(-1), false},
  };
  OldLimits old_limits;
  old_limits[symbols->LookupPredicate("g").value()] = 1;
  for (const Case& c : cases) {
    Rule rule = ParseRuleOrDie(symbols, c.rule);
    const Database* d = c.delta_pos == std::size_t(-1) ? nullptr : &delta;
    CompiledRule plan =
        CompiledRule::Compile(rule, c.delta_pos, c.use_old, db, d);
    ASSERT_TRUE(plan.compiled()) << c.label;
    plan.EnsureIndexes(db, d);
    ExpectRoundTripExecutes(plan, db, d,
                            c.use_old ? &old_limits : nullptr, c.label);
  }
}

TEST(BytecodeTest, RoundTripOnMultiwayTriangle) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols, "e(1, 2). e(2, 3). e(3, 1). e(1, 3). e(3, 2). e(2, 1).");
  Rule rule =
      ParseRuleOrDie(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(x, z).");
  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  ASSERT_TRUE(plan.compiled());
  ASSERT_EQ(plan.bytecode_program().shape, 1)
      << "triangle should lower to the multiway shape";
  plan.EnsureIndexes(db, nullptr);
  ExpectRoundTripExecutes(plan, db, nullptr, nullptr, "triangle");
}

TEST(BytecodeTest, RoundTripOnTwentyRandomSeeds) {
  // Generator-driven property: saturate a planted program, then for each
  // of its rules compile the full-join variant and check the serialize /
  // deserialize / execute loop. 20 seeds x several rules each.
  KnobGuard guard;
  std::size_t lowered = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto symbols = MakeSymbols();
    PlantedProgramOptions options;
    options.seed = seed * 2654435761u + 17;
    options.num_extensional = 1 + seed % 3;
    options.num_intentional = 1 + seed % 4;
    options.chain_rules = 2 + seed % 3;
    options.chain_length = 2 + seed % 3;
    options.recursion_percent = 20 + static_cast<int>(seed % 5) * 15;
    Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
    ASSERT_TRUE(planted.ok()) << planted.status().ToString();

    Database db(symbols);
    const GraphShape shapes[] = {GraphShape::kChain, GraphShape::kCycle,
                                 GraphShape::kBinaryTree, GraphShape::kRandom};
    for (std::size_t i = 0; i < options.num_extensional; ++i) {
      GraphOptions graph;
      graph.shape = shapes[(seed + i) % 4];
      graph.num_nodes = 5 + (seed + i) % 4;
      graph.num_edges = 8 + (seed + 2 * i) % 7;
      graph.seed = seed * 101 + i;
      AddGraphFacts(graph,
                    symbols->LookupPredicate("e" + std::to_string(i)).value(),
                    &db);
    }
    // Saturate so IDB relations are non-empty and plans see real sizes.
    ASSERT_TRUE(EvaluateSemiNaive(planted->program, &db).ok());

    for (const Rule& rule : planted->program.rules()) {
      CompiledRule plan = CompiledRule::Compile(
          rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db,
          nullptr);
      if (!plan.compiled() || plan.bytecode_program().empty()) continue;
      plan.EnsureIndexes(db, nullptr);
      ++lowered;
      ExpectRoundTripExecutes(plan, db, nullptr, nullptr,
                              "seed " + std::to_string(seed));
    }
  }
  // The generator must actually exercise the lowering; if this drops to
  // zero the property above is vacuous.
  EXPECT_GE(lowered, 20u);
}

TEST(BytecodeTest, DecodeRejectsMalformedHeaders) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, z) :- a(x, y), g(y, z).");
  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  std::vector<std::uint8_t> bytes = bytecode::Encode(plan.bytecode_program());
  ASSERT_GE(bytes.size(), 8u);

  bytecode::Program out;
  // Truncations at every prefix length must be rejected, never crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(bytecode::Decode(bytes.data(), len, &out));
  }
  // Trailing garbage.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(bytecode::Decode(padded.data(), padded.size(), &out));
  // Bad magic.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(bytecode::Decode(bad.data(), bad.size(), &out));
  // Unsupported version.
  bad = bytes;
  bad[4] = 0xEE;
  std::string error;
  EXPECT_FALSE(bytecode::Decode(bad.data(), bad.size(), &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BytecodeTest, ValidatorRejectsCorruptedPrograms) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, z) :- a(x, y), g(y, z).");
  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  const bytecode::Program& good = plan.bytecode_program();
  ASSERT_TRUE(bytecode::Validate(good));

  {
    bytecode::Program p = good;  // jump target past the end
    p.code[0].t = static_cast<std::uint32_t>(p.code.size()) + 5;
    p.code[0].op = bytecode::Op::kJump;
    EXPECT_FALSE(bytecode::Validate(p));
  }
  {
    bytecode::Program p = good;  // slot operand out of range
    p.num_slots = 0;
    EXPECT_FALSE(bytecode::Validate(p));
  }
  {
    bytecode::Program p = good;  // non-increasing key columns
    if (!p.steps.empty()) {
      p.steps[0].key_cols = {1, 0};
      EXPECT_FALSE(bytecode::Validate(p));
    }
  }
  {
    bytecode::Program p = good;  // dangling pool reference
    if (!p.steps.empty() && !p.steps[0].key_template.empty()) {
      p.steps[0].key_template[0] = 99;
      EXPECT_FALSE(bytecode::Validate(p));
    } else {
      p.head[0].is_constant = true;
      p.head[0].index = 99;
      EXPECT_FALSE(bytecode::Validate(p));
    }
  }
  {
    bytecode::Program p = good;  // row access before any Next op ran
    p.code.assign({{bytecode::Op::kLoad, 0, 0, 0, 0},
                   {bytecode::Op::kHalt, 0, 0, 0, 0}});
    EXPECT_FALSE(bytecode::Validate(p));
  }
  {
    bytecode::Program p = good;  // reachable fall-through off the end
    p.code.pop_back();
    while (!p.code.empty() && p.code.back().op == bytecode::Op::kHalt) {
      p.code.pop_back();
    }
    if (!p.code.empty()) {
      EXPECT_FALSE(bytecode::Validate(p));
    }
  }
}

TEST(BytecodeTest, RunDeclinesGracefullyOnBadDatabases) {
  // Run must return false -- with no partial inserts and no counter
  // drift -- when the databases contradict the program, so Apply can
  // fall back to the struct interpreter.
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, z) :- a(x, y), g(y, z).");
  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  const bytecode::Program& program = plan.bytecode_program();
  ASSERT_FALSE(program.empty());

  // Missing delta for a delta-source program.
  Rule delta_rule = ParseRuleOrDie(symbols, "h(x, z) :- a(x, y), g(y, z).");
  Database delta(symbols);
  delta.AddFact(symbols->LookupPredicate("g").value(),
                {Value::Int(2), Value::Int(3)});
  CompiledRule delta_plan =
      CompiledRule::Compile(delta_rule, /*delta_pos=*/1, /*use_old=*/false,
                            db, &delta);
  ASSERT_FALSE(delta_plan.bytecode_program().empty());
  MatchStats stats;
  std::size_t new_facts = 0;
  Database out(symbols);
  EXPECT_FALSE(bytecode::Run(delta_plan.bytecode_program(), db,
                             /*delta=*/nullptr, nullptr, &out, &stats,
                             &new_facts));
  EXPECT_EQ(stats.substitutions + stats.index_lookups + stats.tuples_scanned,
            0u);

  // Row-store relations: the VM declines (id-space execution needs
  // columns).
  SetColumnarStorage(false);
  Database row_db = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3).");
  SetColumnarStorage(true);
  EXPECT_FALSE(bytecode::Run(program, row_db, nullptr, nullptr, &out, &stats,
                             &new_facts));
}

}  // namespace
}  // namespace datalog
