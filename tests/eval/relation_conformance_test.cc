// Storage-conformance suite: every behavioral contract of Relation,
// exercised identically against the row-store and columnar backends.
// The two backends must be observationally indistinguishable through
// the public API -- insertion/dedup results, iteration order, lookup
// row-id sets, old-limit watermark snapshots, erasure semantics, and
// index-view invalidation. Any divergence that slips past this suite
// would surface as a cross-engine mismatch in the differential fuzzer,
// so keep this suite the first, cheapest line of defense.

#include <vector>

#include "eval/relation.h"
#include "gtest/gtest.h"

namespace datalog {
namespace {

Tuple T2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

/// Runs each test body under one backend and restores the process-wide
/// knob afterwards, so test order cannot leak storage modes.
class RelationConformanceTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = ColumnarStorageEnabled();
    SetColumnarStorage(GetParam());
  }
  void TearDown() override { SetColumnarStorage(saved_); }

 private:
  bool saved_ = true;
};

TEST_P(RelationConformanceTest, BackendMatchesKnob) {
  Relation rel(2);
  EXPECT_EQ(rel.columnar(), GetParam());
}

TEST_P(RelationConformanceTest, InsertDeduplicatesAndCounts) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T2(1, 2)));
  EXPECT_FALSE(rel.Insert(T2(1, 2)));
  EXPECT_TRUE(rel.Insert(T2(2, 1)));
  EXPECT_FALSE(rel.Insert(T2(2, 1)));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(T2(1, 2)));
  EXPECT_TRUE(rel.Contains(T2(2, 1)));
  EXPECT_FALSE(rel.Contains(T2(2, 2)));
}

TEST_P(RelationConformanceTest, IterationFollowsInsertionOrder) {
  Relation rel(2);
  rel.Insert(T2(5, 6));
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  rel.Insert(T2(1, 2));  // duplicate: must not disturb the order
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.row(0), T2(5, 6));
  EXPECT_EQ(rel.row(1), T2(1, 2));
  EXPECT_EQ(rel.row(2), T2(3, 4));
}

TEST_P(RelationConformanceTest, MixedValueKindsStayDistinct) {
  // Int(7) and Symbol(7) share a payload; the dictionary (and the row
  // set) must keep the kinds apart.
  Relation rel(1);
  EXPECT_TRUE(rel.Insert({Value::Int(7)}));
  EXPECT_TRUE(rel.Insert({Value::Symbol(7)}));
  EXPECT_FALSE(rel.Insert({Value::Int(7)}));
  EXPECT_TRUE(rel.Contains({Value::Int(7)}));
  EXPECT_TRUE(rel.Contains({Value::Symbol(7)}));
  EXPECT_FALSE(rel.Contains({Value::Frozen(7)}));
}

TEST_P(RelationConformanceTest, LookupReturnsRowIdsInInsertionOrder) {
  Relation rel(2);
  rel.Insert(T2(1, 9));
  rel.Insert(T2(2, 9));
  rel.Insert(T2(1, 8));
  rel.Insert(T2(1, 7));
  const std::vector<std::uint32_t>& hits = rel.Lookup(0, Value::Int(1));
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 2u);
  EXPECT_EQ(hits[2], 3u);
  EXPECT_TRUE(rel.Lookup(0, Value::Int(99)).empty());
}

TEST_P(RelationConformanceTest, MultiColumnLookupAgreesWithScan) {
  Relation rel(3);
  rel.Insert({Value::Int(1), Value::Int(2), Value::Int(3)});
  rel.Insert({Value::Int(1), Value::Int(2), Value::Int(4)});
  rel.Insert({Value::Int(1), Value::Int(5), Value::Int(3)});
  const auto& hits = rel.Lookup({0, 1}, {Value::Int(1), Value::Int(2)});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
  const auto& one = rel.Lookup({1, 2}, {Value::Int(5), Value::Int(3)});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 2u);
}

TEST_P(RelationConformanceTest, LookupKeyNeverInsertedAnywhere) {
  // A probe key absent from the whole process (not just this relation)
  // exercises the columnar backend's unknown-dictionary-id early out.
  Relation rel(2);
  rel.Insert(T2(1, 2));
  EXPECT_TRUE(rel.Lookup(0, Value::Int(123456789)).empty());
  EXPECT_FALSE(rel.Contains(T2(123456789, 987654321)));
}

TEST_P(RelationConformanceTest, IndexExtendsAcrossLaterInserts) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  EXPECT_EQ(rel.Lookup(0, Value::Int(1)).size(), 1u);
  rel.Insert(T2(1, 3));  // appended after the index was built
  EXPECT_EQ(rel.Lookup(0, Value::Int(1)).size(), 2u);
}

TEST_P(RelationConformanceTest, OldLimitWatermarkSnapshotsStaleRows) {
  // The semi-naive contract: row ids below a previously taken size()
  // keep identifying the same tuples after later appends.
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  const std::size_t watermark = rel.size();
  rel.Insert(T2(5, 6));
  rel.Insert(T2(1, 7));
  for (std::size_t i = 0; i < watermark; ++i) {
    EXPECT_TRUE(rel.Contains(rel.row(i)));
  }
  EXPECT_EQ(rel.row(0), T2(1, 2));
  EXPECT_EQ(rel.row(1), T2(3, 4));
  // Old-snapshot filtering as compiled plans do it: postings for key 1
  // split across the watermark.
  const auto& hits = rel.Lookup(0, Value::Int(1));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_LT(hits[0], watermark);
  EXPECT_GE(hits[1], watermark);
}

TEST_P(RelationConformanceTest, EraseAllRemovesAndCompacts) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  rel.Insert(T2(5, 6));
  EXPECT_EQ(rel.EraseAll({T2(3, 4), T2(7, 8)}), 1u);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.row(0), T2(1, 2));
  EXPECT_EQ(rel.row(1), T2(5, 6));
  EXPECT_FALSE(rel.Contains(T2(3, 4)));
  EXPECT_TRUE(rel.Insert(T2(3, 4)));  // re-insertable after erasure
  EXPECT_EQ(rel.size(), 3u);
}

TEST_P(RelationConformanceTest, EraseAllRebuildsIndexesOnNextLookup) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  rel.Insert(T2(1, 5));
  EXPECT_EQ(rel.Lookup(0, Value::Int(1)).size(), 2u);
  EXPECT_EQ(rel.Lookup({0, 1}, T2(3, 4)).size(), 1u);
  EXPECT_EQ(rel.EraseAll({T2(1, 2)}), 1u);
  // Row ids shifted down; the rebuilt index must reflect that.
  const auto& hits = rel.Lookup(0, Value::Int(1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
  const auto& multi = rel.Lookup({0, 1}, T2(3, 4));
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_EQ(multi[0], 0u);
}

TEST_P(RelationConformanceTest, EraseAllInvalidatesOutstandingViews) {
  // Regression test: EraseAll used to drop the index map nodes
  // themselves, leaving previously prepared views dangling into freed
  // memory (a use-after-free under ASan). The contract is that a stale
  // view stays dereferenceable and finds nothing.
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(1, 3));
  rel.Insert(T2(4, 5));
  Relation::SingleIndexView single = rel.PrepareSingleIndex(0);
  Relation::MultiIndexView multi = rel.PrepareIndex({0, 1});
  ASSERT_EQ(single.Find(Value::Int(1)).size(), 2u);
  ASSERT_EQ(multi.Find(T2(4, 5)).size(), 1u);
  EXPECT_EQ(rel.EraseAll({T2(1, 2)}), 1u);
  EXPECT_TRUE(single.Find(Value::Int(1)).empty());
  EXPECT_TRUE(single.Find(Value::Int(4)).empty());
  EXPECT_TRUE(multi.Find(T2(4, 5)).empty());
  // Fresh views see the compacted rows again.
  EXPECT_EQ(rel.PrepareSingleIndex(0).Find(Value::Int(1)).size(), 1u);
  EXPECT_EQ(rel.PrepareIndex({0, 1}).Find(T2(4, 5)).size(), 1u);
}

TEST_P(RelationConformanceTest, PreparedViewsAgreeWithLookup) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(2, 2));
  rel.Insert(T2(1, 4));
  Relation::SingleIndexView single = rel.PrepareSingleIndex(1);
  EXPECT_EQ(single.Find(Value::Int(2)), rel.Lookup(1, Value::Int(2)));
  Relation::MultiIndexView multi = rel.PrepareIndex({0, 1});
  EXPECT_EQ(multi.Find(T2(1, 4)), rel.Lookup({0, 1}, T2(1, 4)));
  EXPECT_TRUE(multi.Find(T2(9, 9)).empty());
}

TEST_P(RelationConformanceTest, DegenerateEmptyColumnIndexMapsAllRows) {
  // Zero bound columns: the empty key indexes every row (the compiled
  // matcher's zero-arity old-snapshot probe relies on this).
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  Relation::MultiIndexView view = rel.PrepareIndex({});
  const auto& all = view.Find(Tuple{});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], 0u);
  EXPECT_EQ(all[1], 1u);
}

TEST_P(RelationConformanceTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Tuple{}));
  EXPECT_EQ(rel.EraseAll({Tuple{}}), 1u);
  EXPECT_TRUE(rel.empty());
  EXPECT_FALSE(rel.Contains(Tuple{}));
}

TEST_P(RelationConformanceTest, IdsRoundTripThroughEitherBackend) {
  // InsertIds/ContainsIds are advertised as backend-agnostic: feed the
  // columnar id row of a tuple into a relation of the backend under
  // test and observe the same set through the Value API.
  ValueDictionary& dict = ValueDictionary::Global();
  std::vector<std::uint32_t> ids;
  dict.InternRow(T2(41, 42), &ids);
  Relation rel(2);
  EXPECT_TRUE(rel.InsertIds(ids));
  EXPECT_FALSE(rel.InsertIds(ids));
  EXPECT_TRUE(rel.Contains(T2(41, 42)));
  EXPECT_TRUE(rel.ContainsIds(ids));
  EXPECT_EQ(rel.row(0), T2(41, 42));
  std::vector<std::uint32_t> other;
  dict.InternRow(T2(42, 41), &other);
  EXPECT_FALSE(rel.ContainsIds(other));
}

TEST_P(RelationConformanceTest, ColumnViewMirrorsRows) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  if (!rel.columnar()) return;  // the id columns are columnar-only
  ValueDictionary& dict = ValueDictionary::Global();
  for (std::size_t i = 0; i < rel.size(); ++i) {
    for (int c = 0; c < rel.arity(); ++c) {
      EXPECT_EQ(dict.Resolve(rel.column(c)[i]),
                rel.row(i)[static_cast<std::size_t>(c)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RowAndColumnar, RelationConformanceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Columnar" : "RowStore";
                         });

}  // namespace
}  // namespace datalog
