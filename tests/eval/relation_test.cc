#include "eval/relation.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

Tuple T2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T2(1, 2)));
  EXPECT_FALSE(rel.Insert(T2(1, 2)));
  EXPECT_TRUE(rel.Insert(T2(2, 1)));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  EXPECT_TRUE(rel.Contains(T2(1, 2)));
  EXPECT_FALSE(rel.Contains(T2(2, 1)));
}

TEST(RelationTest, RowsPreserveInsertionOrder) {
  Relation rel(2);
  rel.Insert(T2(3, 4));
  rel.Insert(T2(1, 2));
  EXPECT_EQ(rel.row(0), T2(3, 4));
  EXPECT_EQ(rel.row(1), T2(1, 2));
}

TEST(RelationTest, SingleColumnLookup) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(1, 3));
  rel.Insert(T2(2, 3));
  const auto& hits = rel.Lookup({0}, {Value::Int(1)});
  EXPECT_EQ(hits.size(), 2u);
  const auto& none = rel.Lookup({0}, {Value::Int(9)});
  EXPECT_TRUE(none.empty());
}

TEST(RelationTest, SecondColumnLookup) {
  Relation rel(2);
  rel.Insert(T2(1, 3));
  rel.Insert(T2(2, 3));
  rel.Insert(T2(3, 1));
  EXPECT_EQ(rel.Lookup({1}, {Value::Int(3)}).size(), 2u);
}

TEST(RelationTest, MultiColumnLookup) {
  Relation rel(3);
  rel.Insert({Value::Int(1), Value::Int(2), Value::Int(3)});
  rel.Insert({Value::Int(1), Value::Int(5), Value::Int(3)});
  const auto& hits = rel.Lookup({0, 2}, {Value::Int(1), Value::Int(3)});
  EXPECT_EQ(hits.size(), 2u);
  const auto& hit = rel.Lookup({0, 1}, {Value::Int(1), Value::Int(5)});
  EXPECT_EQ(hit.size(), 1u);
  EXPECT_EQ(rel.row(hit[0])[2], Value::Int(3));
}

TEST(RelationTest, IndexExtendsAfterInsert) {
  // The index is built lazily, then must pick up later insertions.
  Relation rel(2);
  rel.Insert(T2(1, 2));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 1u);
  rel.Insert(T2(1, 9));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 2u);
}

TEST(RelationTest, ZeroArity) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, MixedValueKinds) {
  Relation rel(1);
  rel.Insert({Value::Int(1)});
  rel.Insert({Value::Frozen(1)});
  rel.Insert({Value::Null(1)});
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.Lookup({0}, {Value::Frozen(1)}).size(), 1u);
}

TEST(RelationTest, LookupOnEmptyRelation) {
  Relation rel(2);
  EXPECT_TRUE(rel.Lookup({0}, {Value::Int(1)}).empty());
  EXPECT_TRUE(rel.Lookup({0, 1}, T2(1, 2)).empty());
  // The index created by the miss must still extend once rows arrive.
  rel.Insert(T2(1, 2));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 1u);
}

TEST(RelationTest, MissingKeyReturnsStableEmptyResult) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  const auto& miss1 = rel.Lookup({0}, {Value::Int(7)});
  const auto& miss2 = rel.Lookup({1}, {Value::Int(7)});
  EXPECT_TRUE(miss1.empty());
  // Misses on different indexes share one empty sentinel; neither lookup
  // may have materialized an entry for the absent key.
  EXPECT_EQ(&miss1, &miss2);
}

TEST(RelationTest, IndexExtensionAfterInterleavedInserts) {
  // Interleave inserts with lookups on two different indexes; each index
  // extends independently from its own watermark and must never miss or
  // duplicate rows.
  Relation rel(2);
  rel.Insert(T2(1, 10));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 1u);
  rel.Insert(T2(1, 20));
  rel.Insert(T2(2, 10));
  EXPECT_EQ(rel.Lookup({1}, {Value::Int(10)}).size(), 2u);
  rel.Insert(T2(1, 30));
  rel.Insert(T2(1, 10));  // duplicate: must not extend anything
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 3u);
  EXPECT_EQ(rel.Lookup({1}, {Value::Int(10)}).size(), 2u);
  rel.Insert(T2(3, 10));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 3u);
  EXPECT_EQ(rel.Lookup({1}, {Value::Int(10)}).size(), 3u);
  EXPECT_EQ(rel.Lookup({0, 1}, T2(1, 20)).size(), 1u);
}

TEST(RelationTest, EnsureIndexMatchesLazyLookup) {
  Relation rel(2);
  for (std::int64_t i = 0; i < 32; ++i) rel.Insert(T2(i % 4, i));
  rel.EnsureIndex({0});
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(2)}).size(), 8u);
  // EnsureIndex after more inserts re-extends to cover the new rows.
  rel.Insert(T2(2, 99));
  rel.EnsureIndex({0});
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(2)}).size(), 9u);
}

TEST(RelationTest, EraseAllRemovesOnlyPresentTuples) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(2, 3));
  rel.Insert(T2(3, 4));
  // One present, one absent, one present-but-listed-twice.
  EXPECT_EQ(rel.EraseAll({T2(1, 2), T2(9, 9), T2(3, 4), T2(3, 4)}), 2u);
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_FALSE(rel.Contains(T2(1, 2)));
  EXPECT_TRUE(rel.Contains(T2(2, 3)));
  EXPECT_FALSE(rel.Contains(T2(3, 4)));
  // Erasing nothing is a no-op that reports zero.
  EXPECT_EQ(rel.EraseAll({T2(7, 7)}), 0u);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, EraseAllPreservesSurvivorOrder) {
  Relation rel(2);
  rel.Insert(T2(5, 0));
  rel.Insert(T2(1, 0));
  rel.Insert(T2(3, 0));
  rel.Insert(T2(2, 0));
  rel.EraseAll({T2(1, 0)});
  EXPECT_EQ(rel.row(0), T2(5, 0));
  EXPECT_EQ(rel.row(1), T2(3, 0));
  EXPECT_EQ(rel.row(2), T2(2, 0));
}

TEST(RelationTest, EraseAllInvalidatesLazyIndexes) {
  // Build an index, erase rows (shifting row ids), and check that lookups
  // on both the prebuilt and a fresh column set see exactly the
  // survivors -- a stale index would return shifted or dangling row ids.
  Relation rel(2);
  for (std::int64_t i = 0; i < 8; ++i) rel.Insert(T2(i % 2, i));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(0)}).size(), 4u);
  rel.EnsureIndex({1});

  EXPECT_EQ(rel.EraseAll({T2(0, 0), T2(0, 2), T2(1, 7)}), 3u);
  const auto& zeros = rel.Lookup({0}, {Value::Int(0)});
  EXPECT_EQ(zeros.size(), 2u);
  for (std::uint32_t row_id : zeros) {
    EXPECT_EQ(rel.row(row_id)[0], Value::Int(0));
  }
  EXPECT_TRUE(rel.Lookup({1}, {Value::Int(7)}).empty());
  EXPECT_EQ(rel.Lookup({1}, {Value::Int(3)}).size(), 1u);
  EXPECT_EQ(rel.Lookup({0, 1}, T2(1, 5)).size(), 1u);

  // Indexes keep extending after the rebuild.
  rel.Insert(T2(0, 100));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(0)}).size(), 3u);
}

TEST(RelationTest, SingleAndMultiColumnLookupsAgree) {
  // The Value-keyed single-column fast path must return exactly the row
  // ids of the generic tuple-keyed index on the same column, across
  // every column, key, and growth step (including misses).
  Relation rel(2);
  for (std::int64_t i = 0; i < 40; ++i) rel.Insert(T2(i % 5, i % 7));
  for (int round = 0; round < 2; ++round) {
    for (int col = 0; col < 2; ++col) {
      for (std::int64_t v = -1; v < 9; ++v) {
        const Value key = Value::Int(v);
        // The single-column overload against a straight scan.
        const std::vector<std::uint32_t>& fast = rel.Lookup(col, key);
        std::vector<std::uint32_t> slow;
        for (std::uint32_t id = 0; id < rel.size(); ++id) {
          if (rel.row(id)[static_cast<std::size_t>(col)] == key) {
            slow.push_back(id);
          }
        }
        EXPECT_EQ(fast, slow) << "col " << col << " key " << v;
        // The vector-of-columns spelling delegates to the same index.
        EXPECT_EQ(rel.Lookup(std::vector<int>{col}, Tuple{key}), slow);
      }
    }
    // Grow the relation between rounds: the single-column index must
    // extend incrementally like the generic one.
    for (std::int64_t i = 100; i < 120; ++i) rel.Insert(T2(i % 5, i));
  }
}

TEST(RelationTest, SingleColumnIndexSurvivesEraseAll) {
  Relation rel(2);
  for (std::int64_t i = 0; i < 10; ++i) rel.Insert(T2(i % 2, i));
  EXPECT_EQ(rel.Lookup(0, Value::Int(0)).size(), 5u);
  rel.EraseAll({T2(0, 0), T2(0, 2)});
  // Row ids shifted; the rebuilt index must reflect the survivors.
  EXPECT_EQ(rel.Lookup(0, Value::Int(0)).size(), 3u);
  for (std::uint32_t id : rel.Lookup(0, Value::Int(0))) {
    EXPECT_EQ(rel.row(id)[0], Value::Int(0));
  }
}

TEST(RelationTest, ConcurrentReadOnlyLookupsOnPrebuiltIndex) {
  // The parallel evaluator's frozen-snapshot contract: after EnsureIndex,
  // any number of threads may Lookup/Contains concurrently. Run enough
  // lookups that TSan would flag an index rebuild racing a reader.
  Relation rel(2);
  for (std::int64_t i = 0; i < 256; ++i) rel.Insert(T2(i % 16, i));
  rel.EnsureIndex({0});
  rel.EnsureIndex({1});
  rel.EnsureIndex({0, 1});

  std::atomic<std::size_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rel, &total, t] {
      std::size_t hits = 0;
      for (std::int64_t i = 0; i < 200; ++i) {
        hits += rel.Lookup({0}, {Value::Int((i + t) % 16)}).size();
        hits += rel.Lookup({1}, {Value::Int(i)}).size();
        hits += rel.Lookup({0, 1}, T2(i % 16, i)).size();
        hits += rel.Contains(T2(i % 16, i)) ? 1 : 0;
      }
      total.fetch_add(hits, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  // Per thread: 200 * 16 first-column hits, 200 second-column hits (one
  // row per distinct i), and the (i%16, i) pairs exist for all i < 256.
  EXPECT_EQ(total.load(), 4u * (200u * 16u + 200u + 200u + 200u));
}

}  // namespace
}  // namespace datalog
