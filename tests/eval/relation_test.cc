#include "eval/relation.h"

#include "gtest/gtest.h"

namespace datalog {
namespace {

Tuple T2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T2(1, 2)));
  EXPECT_FALSE(rel.Insert(T2(1, 2)));
  EXPECT_TRUE(rel.Insert(T2(2, 1)));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  EXPECT_TRUE(rel.Contains(T2(1, 2)));
  EXPECT_FALSE(rel.Contains(T2(2, 1)));
}

TEST(RelationTest, RowsPreserveInsertionOrder) {
  Relation rel(2);
  rel.Insert(T2(3, 4));
  rel.Insert(T2(1, 2));
  EXPECT_EQ(rel.row(0), T2(3, 4));
  EXPECT_EQ(rel.row(1), T2(1, 2));
}

TEST(RelationTest, SingleColumnLookup) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(1, 3));
  rel.Insert(T2(2, 3));
  const auto& hits = rel.Lookup({0}, {Value::Int(1)});
  EXPECT_EQ(hits.size(), 2u);
  const auto& none = rel.Lookup({0}, {Value::Int(9)});
  EXPECT_TRUE(none.empty());
}

TEST(RelationTest, SecondColumnLookup) {
  Relation rel(2);
  rel.Insert(T2(1, 3));
  rel.Insert(T2(2, 3));
  rel.Insert(T2(3, 1));
  EXPECT_EQ(rel.Lookup({1}, {Value::Int(3)}).size(), 2u);
}

TEST(RelationTest, MultiColumnLookup) {
  Relation rel(3);
  rel.Insert({Value::Int(1), Value::Int(2), Value::Int(3)});
  rel.Insert({Value::Int(1), Value::Int(5), Value::Int(3)});
  const auto& hits = rel.Lookup({0, 2}, {Value::Int(1), Value::Int(3)});
  EXPECT_EQ(hits.size(), 2u);
  const auto& hit = rel.Lookup({0, 1}, {Value::Int(1), Value::Int(5)});
  EXPECT_EQ(hit.size(), 1u);
  EXPECT_EQ(rel.row(hit[0])[2], Value::Int(3));
}

TEST(RelationTest, IndexExtendsAfterInsert) {
  // The index is built lazily, then must pick up later insertions.
  Relation rel(2);
  rel.Insert(T2(1, 2));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 1u);
  rel.Insert(T2(1, 9));
  EXPECT_EQ(rel.Lookup({0}, {Value::Int(1)}).size(), 2u);
}

TEST(RelationTest, ZeroArity) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, MixedValueKinds) {
  Relation rel(1);
  rel.Insert({Value::Int(1)});
  rel.Insert({Value::Frozen(1)});
  rel.Insert({Value::Null(1)});
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.Lookup({0}, {Value::Frozen(1)}).size(), 1u);
}

}  // namespace
}  // namespace datalog
