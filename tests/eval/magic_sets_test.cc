#include "eval/magic_sets.h"

#include "eval/query.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

constexpr const char* kLinearTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- a(x, y), g(y, z).\n";

TEST(MagicSetsTest, QueryAdornmentFromConstants) {
  auto symbols = MakeSymbols();
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  EXPECT_EQ(QueryAdornment(query), "bf");
  Atom query2 = ParseQueryOrDie(symbols, "?- g(x, 1).");
  EXPECT_EQ(QueryAdornment(query2), "fb");
  Atom query3 = ParseQueryOrDie(symbols, "?- g(1, 2).");
  EXPECT_EQ(QueryAdornment(query3), "bb");
}

TEST(MagicSetsTest, TransformProducesSeedAndRules) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kLinearTc);
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  Result<MagicProgram> magic = MagicSetsTransform(p, query);
  ASSERT_TRUE(magic.ok());
  // Seed fact, one magic rule (for the recursive g), two modified rules.
  EXPECT_EQ(magic->program.NumRules(), 4u);
  bool has_seed = false;
  for (const Rule& r : magic->program.rules()) {
    if (r.IsFact()) has_seed = true;
  }
  EXPECT_TRUE(has_seed);
}

TEST(MagicSetsTest, AnswersMatchSemiNaive) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kLinearTc);
  Database edb = ParseDatabaseOrDie(
      symbols, "a(1, 2). a(2, 3). a(3, 4). a(5, 6). a(6, 5).");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");

  Result<std::vector<Tuple>> plain =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(magic.ok());
  std::set<Tuple> plain_set(plain->begin(), plain->end());
  std::set<Tuple> magic_set(magic->begin(), magic->end());
  EXPECT_EQ(plain_set, magic_set);
  EXPECT_EQ(plain_set.size(), 3u);  // 1 reaches 2, 3, 4
}

TEST(MagicSetsTest, MagicRestrictsComputation) {
  // With the query bound to one component, magic sets must not derive
  // closure facts for the other component.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kLinearTc);
  PredicateId a = symbols->LookupPredicate("a").value();
  Database edb(symbols);
  // Two disjoint chains: 0..9 and 100..109.
  for (int i = 0; i + 1 < 10; ++i) {
    edb.AddFact(a, {Value::Int(i), Value::Int(i + 1)});
    edb.AddFact(a, {Value::Int(100 + i), Value::Int(101 + i)});
  }
  Atom query = ParseQueryOrDie(symbols, "?- g(0, x).");

  EvalStats magic_stats;
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive, &magic_stats);
  EvalStats plain_stats;
  Result<std::vector<Tuple>> plain =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive, &plain_stats);
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(magic->size(), plain->size());
  // The magic evaluation derives fewer facts (it never touches the
  // second chain).
  EXPECT_LT(magic_stats.facts_derived, plain_stats.facts_derived);
}

TEST(MagicSetsTest, DoublyRecursiveProgram) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Atom query = ParseQueryOrDie(symbols, "?- g(2, x).");
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  Result<std::vector<Tuple>> plain =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(std::set<Tuple>(magic->begin(), magic->end()),
            std::set<Tuple>(plain->begin(), plain->end()));
}

TEST(MagicSetsTest, AllFreeQueryStillWorks) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kLinearTc);
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  Atom query = ParseQueryOrDie(symbols, "?- g(x, y).");
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->size(), 3u);
}

TEST(MagicSetsTest, ExtensionalQueryRejected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kLinearTc);
  Atom query = ParseQueryOrDie(symbols, "?- a(1, x).");
  Result<MagicProgram> magic = MagicSetsTransform(p, query);
  EXPECT_FALSE(magic.ok());
}

TEST(MagicSetsTest, FullyBoundQuery) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kLinearTc);
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  Atom yes = ParseQueryOrDie(symbols, "?- g(1, 3).");
  Atom no = ParseQueryOrDie(symbols, "?- g(3, 1).");
  Result<std::vector<Tuple>> r1 =
      AnswerQuery(p, edb, yes, EvalMethod::kMagicSemiNaive);
  Result<std::vector<Tuple>> r2 =
      AnswerQuery(p, edb, no, EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->size(), 1u);
  EXPECT_TRUE(r2->empty());
}

}  // namespace
}  // namespace datalog
