#include "eval/eval_stats.h"

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(EvalStatsTest, AddMergesScalars) {
  EvalStats a, b;
  a.iterations = 2;
  a.facts_derived = 10;
  a.rule_applications = 5;
  a.match.substitutions = 7;
  b.iterations = 3;
  b.facts_derived = 1;
  b.rule_applications = 2;
  b.match.substitutions = 4;
  a.Add(b);
  EXPECT_EQ(a.iterations, 5);
  EXPECT_EQ(a.facts_derived, 11u);
  EXPECT_EQ(a.rule_applications, 7u);
  EXPECT_EQ(a.match.substitutions, 11u);
}

TEST(EvalStatsTest, AddMergesPerRuleRowsPositionally) {
  EvalStats a, b;
  a.per_rule.resize(2);
  a.per_rule[0].facts = 1;
  b.per_rule.resize(3);
  b.per_rule[0].facts = 2;
  b.per_rule[2].substitutions = 9;
  a.Add(b);
  ASSERT_EQ(a.per_rule.size(), 3u);
  EXPECT_EQ(a.per_rule[0].facts, 3u);
  EXPECT_EQ(a.per_rule[2].substitutions, 9u);
}

TEST(EvalStatsTest, AddWithEmptyPerRuleKeepsExisting) {
  EvalStats a, b;
  a.per_rule.resize(2);
  a.per_rule[1].applications = 4;
  a.Add(b);
  ASSERT_EQ(a.per_rule.size(), 2u);
  EXPECT_EQ(a.per_rule[1].applications, 4u);
}

TEST(MatchStatsTest, AddAccumulates) {
  MatchStats a, b;
  a.index_lookups = 1;
  b.index_lookups = 2;
  b.tuples_scanned = 3;
  a.Add(b);
  EXPECT_EQ(a.index_lookups, 3u);
  EXPECT_EQ(a.tuples_scanned, 3u);
}

}  // namespace
}  // namespace datalog
