#include "eval/provenance.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

TEST(ProvenanceTest, InputFactExplainsItself) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  PredicateId a = symbols->LookupPredicate("a").value();
  Result<Derivation> d =
      ExplainFact(p, db, a, {Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsInputFact());
  EXPECT_TRUE(d->premises.empty());
}

TEST(ProvenanceTest, OneStepDerivation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Derivation> d =
      ExplainFact(p, db, g, {Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rule_index, 0);
  ASSERT_EQ(d->premises.size(), 1u);
  EXPECT_TRUE(d->premises[0]->IsInputFact());
}

TEST(ProvenanceTest, RecursiveDerivationTree) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Derivation> d =
      ExplainFact(p, db, g, {Value::Int(1), Value::Int(4)});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rule_index, 1);
  ASSERT_EQ(d->premises.size(), 2u);
  // Premises must join: second arg of the first = first arg of the second.
  EXPECT_EQ(d->premises[0]->fact[1], d->premises[1]->fact[0]);
  // Leaves are inputs.
  std::vector<const Derivation*> stack{d.operator->()};
  while (!stack.empty()) {
    const Derivation* node = stack.back();
    stack.pop_back();
    if (node->premises.empty()) {
      EXPECT_TRUE(node->IsInputFact());
    }
    for (const auto& premise : node->premises) {
      stack.push_back(premise.get());
    }
  }
}

TEST(ProvenanceTest, UnderivableFactIsNotFound) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Derivation> d =
      ExplainFact(p, db, g, {Value::Int(2), Value::Int(1)});
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(ProvenanceTest, RenderedTreeMentionsRulesAndInputs) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Derivation> d =
      ExplainFact(p, db, g, {Value::Int(1), Value::Int(3)});
  ASSERT_TRUE(d.ok());
  std::string rendered = ToString(*d, *symbols);
  EXPECT_NE(rendered.find("[rule 1]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[input]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("g(1, 3)"), std::string::npos) << rendered;
}

TEST(ProvenanceTest, RejectsNegation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- a(x), not b(x).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1).");
  PredicateId pr = symbols->LookupPredicate("p").value();
  EXPECT_FALSE(ExplainFact(p, db, pr, {Value::Int(1)}).ok());
}

TEST(ProvenanceTest, ProgramFactViaEmptyBodyRule) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "a(7, 8).\n"
                                "g(x, z) :- a(x, z).\n");
  Database db(symbols);
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Derivation> d =
      ExplainFact(p, db, g, {Value::Int(7), Value::Int(8)});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rule_index, 1);
  ASSERT_EQ(d->premises.size(), 1u);
  // The premise a(7,8) came from the program's fact rule.
  EXPECT_EQ(d->premises[0]->rule_index, 0);
}

}  // namespace
}  // namespace datalog
