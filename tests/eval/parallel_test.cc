#include "eval/parallel.h"

#include <vector>

#include "eval/naive.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

TEST(ParallelTest, TransitiveClosureMatchesSequential) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    auto symbols = MakeSymbols();
    Program p = ParseProgramOrDie(symbols,
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n");
    Database seq = ParseDatabaseOrDie(symbols, "a(1,2). a(2,3). a(3,4).");
    Database par = seq;
    ASSERT_TRUE(EvaluateSemiNaive(p, &seq).ok());
    Result<EvalStats> stats = EvaluateSemiNaiveParallel(p, &par, threads);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(seq, par) << "threads=" << threads;
    EXPECT_EQ(seq.ToString(), par.ToString());
    EXPECT_GT(stats->parallel_rounds, 0u);
    EXPECT_GT(stats->parallel_tasks, 0u);
  }
}

TEST(ParallelTest, LargeClosureShardsTheDelta) {
  // > 64 delta rows per round forces the shard fan-out path.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database seq(symbols);
  AddGraphFacts({GraphShape::kRandom, 160, 480, 5}, a, &seq);
  Database par = seq;
  EvalStats seq_stats = EvaluateSemiNaive(p, &seq).value();
  Result<EvalStats> stats = EvaluateSemiNaiveParallel(p, &par, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(seq, par);
  // Sharding must create more tasks than (rule x position) passes alone.
  EXPECT_GT(stats->parallel_tasks, stats->rule_applications);
  // Both engines reach the same fixpoint with the same total facts.
  EXPECT_EQ(stats->facts_derived, seq_stats.facts_derived);
}

TEST(ParallelTest, ProgramFactsAndIdbInputsHandled) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "a(7, 8).\n"
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  // IDB facts as inputs (the uniform semantics of Section IV).
  Database seq = ParseDatabaseOrDie(symbols, "a(1,2). g(2,9).");
  Database par = seq;
  ASSERT_TRUE(EvaluateSemiNaive(p, &seq).ok());
  ASSERT_TRUE(EvaluateSemiNaiveParallel(p, &par, 3).ok());
  EXPECT_EQ(seq, par);
  Tuple t{Value::Int(1), Value::Int(9)};
  EXPECT_TRUE(par.Contains(symbols->LookupPredicate("g").value(), t));
}

TEST(ParallelTest, EmptyDatabaseAndEmptyProgram) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db(symbols);
  Result<EvalStats> stats = EvaluateSemiNaiveParallel(p, &db, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->facts_derived, 0u);
  EXPECT_TRUE(db.empty());

  Program empty;
  Database db2 = ParseDatabaseOrDie(symbols, "a(1,2).");
  Result<EvalStats> stats2 = EvaluateSemiNaiveParallel(empty, &db2, 4);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(db2.NumFacts(), 1u);
}

TEST(ParallelTest, RejectsNegationLikeSequential) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x) :- a(x, y), not b(x, y).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1,2).");
  EXPECT_FALSE(EvaluateSemiNaiveParallel(p, &db, 2).ok());
  EXPECT_FALSE(EvaluateSemiNaiveSccParallel(p, &db, 2).ok());
}

TEST(ParallelTest, SccVariantMatchesFlatParallelAndSequential) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "reach(x, z) :- a(x, z).\n"
                                "reach(x, z) :- a(x, y), reach(y, z).\n"
                                "pairs(x, z) :- reach(x, z), reach(z, x).\n"
                                "tri(x) :- pairs(x, y), a(y, x).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database base(symbols);
  AddGraphFacts({GraphShape::kRandom, 24, 60, 9}, a, &base);

  Database seq = base, par = base, scc = base;
  ASSERT_TRUE(EvaluateSemiNaive(p, &seq).ok());
  ASSERT_TRUE(EvaluateSemiNaiveParallel(p, &par, 4).ok());
  ASSERT_TRUE(EvaluateSemiNaiveSccParallel(p, &scc, 4).ok());
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq, scc);
}

TEST(ParallelTest, HardwareConcurrencyDefaultWorks) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1,2). a(2,3).");
  Database expect = db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &expect).ok());
  ASSERT_TRUE(EvaluateSemiNaiveParallel(p, &db, /*num_threads=*/0).ok());
  EXPECT_EQ(expect, db);
}

TEST(ParallelTest, RunFixpointParallelUsableWithExternalPool) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database seq = ParseDatabaseOrDie(symbols, "a(1,2). a(2,3). a(3,1).");
  Database par = seq;
  RunSemiNaiveFixpoint(p.rules(), &seq);
  ThreadPool pool(2);
  RunSemiNaiveFixpointParallel(p.rules(), &par, &pool);
  EXPECT_EQ(seq, par);
}

TEST(ParallelTest, DeterministicAcrossTenRunsAtFourThreads) {
  // Nondeterministic merges must never land unnoticed: the same program
  // at 4 threads must give identical databases AND identical counters on
  // every run (the timing fields are the only run-to-run variation).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n"
                                "h(x, z) :- g(x, z), a(z, x).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database base(symbols);
  AddGraphFacts({GraphShape::kRandom, 48, 140, 17}, a, &base);

  std::string reference_db;
  EvalStats reference;
  for (int run = 0; run < 10; ++run) {
    Database db = base;
    Result<EvalStats> stats = EvaluateSemiNaiveParallel(p, &db, 4);
    ASSERT_TRUE(stats.ok());
    if (run == 0) {
      reference_db = db.ToString();
      reference = *stats;
      continue;
    }
    EXPECT_EQ(db.ToString(), reference_db) << "run " << run;
    EXPECT_EQ(stats->facts_derived, reference.facts_derived);
    EXPECT_EQ(stats->iterations, reference.iterations);
    EXPECT_EQ(stats->rule_applications, reference.rule_applications);
    EXPECT_EQ(stats->parallel_tasks, reference.parallel_tasks);
    EXPECT_EQ(stats->match.substitutions, reference.match.substitutions);
    EXPECT_EQ(stats->match.index_lookups, reference.match.index_lookups);
    EXPECT_EQ(stats->match.tuples_scanned, reference.match.tuples_scanned);
    ASSERT_EQ(stats->per_rule.size(), reference.per_rule.size());
    for (std::size_t i = 0; i < reference.per_rule.size(); ++i) {
      EXPECT_EQ(stats->per_rule[i].facts, reference.per_rule[i].facts);
      EXPECT_EQ(stats->per_rule[i].applications,
                reference.per_rule[i].applications);
      EXPECT_EQ(stats->per_rule[i].substitutions,
                reference.per_rule[i].substitutions);
    }
  }
}

TEST(ParallelTest, StatsIdenticalAcrossThreadCounts) {
  // The task stream depends only on the data, never on the worker count,
  // so even the work counters agree between 1, 2 and 4 threads.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database base(symbols);
  AddGraphFacts({GraphShape::kRandom, 40, 120, 3}, a, &base);

  std::vector<EvalStats> all;
  for (std::size_t threads : {1u, 2u, 4u}) {
    Database db = base;
    all.push_back(EvaluateSemiNaiveParallel(p, &db, threads).value());
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i].facts_derived, all[0].facts_derived);
    EXPECT_EQ(all[i].iterations, all[0].iterations);
    EXPECT_EQ(all[i].parallel_tasks, all[0].parallel_tasks);
    EXPECT_EQ(all[i].match.substitutions, all[0].match.substitutions);
  }
}

}  // namespace
}  // namespace datalog
