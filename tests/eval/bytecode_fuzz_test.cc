// Fuzzes the three trust boundaries of the bytecode layer -- Decode on
// untrusted bytes, Validate on arbitrary Programs, and Run on programs
// the validator accepted -- asserting "rejected or UB-free": every input
// is either turned away with an error or processed without crashes,
// leaks, or out-of-bounds access (the ASan/UBSan jobs in tools/check.sh
// run this file under both sanitizers).
//
// Executed inputs are restricted to shapes that terminate by
// construction: random instruction streams only run when every control
// transfer goes strictly forward (the validator guarantees memory
// safety, not termination -- scheduling untrusted programs is the
// server's job, see docs/bytecode_vm.md), and byte-level corpus
// mutations are decoded and validated but not run, since a flipped jump
// offset can make a structurally valid program spin. Field-level
// mutations leave the code section untouched, so those do run.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "eval/bytecode/bytecode.h"
#include "eval/compiled_rule.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseRuleOrDie;

struct KnobGuard {
  ~KnobGuard() {
    SetColumnarStorage(true);
    SetMultiwayJoins(true);
    SetBytecodeExecution(true);
  }
};

/// A small world to execute accepted programs against: the databases do
/// not need to match the fuzzed program -- Run's setup declines
/// mismatches (missing predicates, wrong arities) by returning false.
struct Harness {
  std::shared_ptr<SymbolTable> symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols, "a(1, 2). a(2, 3). g(2, 3). g(3, 1). e(1, 2). e(2, 3). "
               "e(3, 1). b(2, 3).");

  CompiledRule Lowered(const char* rule_text) {
    Rule rule = ParseRuleOrDie(symbols, rule_text);
    CompiledRule plan = CompiledRule::Compile(
        rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
    plan.EnsureIndexes(db, nullptr);
    return plan;
  }

  /// Runs an accepted program; only cares that nothing trips a sanitizer.
  void RunSafely(const bytecode::Program& program) {
    MatchStats stats;
    std::size_t new_facts = 0;
    Database out(symbols);
    bytecode::Run(program, db, /*delta=*/nullptr, /*old_limits=*/nullptr,
                  &out, &stats, &new_facts);
  }
};

TEST(BytecodeFuzzTest, DecodeSurvivesRandomBytes) {
  KnobGuard guard;
  std::mt19937_64 rng(0xB17EC0DEull);
  bytecode::Program out;
  std::size_t accepted = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> blob(rng() % 512);
    for (std::uint8_t& byte : blob) byte = static_cast<std::uint8_t>(rng());
    // Half the blobs get a plausible header so decoding reaches the body.
    if (iter % 2 == 0 && blob.size() >= 8) {
      blob[0] = 0x44; blob[1] = 0x4C; blob[2] = 0x42; blob[3] = 0x43;
      blob[4] = bytecode::kBytecodeVersion;
    }
    if (bytecode::Decode(blob.data(), blob.size(), &out)) ++accepted;
  }
  // Random bytes virtually never form a valid program; the property under
  // test is simply that Decode neither crashes nor reads out of bounds.
  EXPECT_LE(accepted, 4u);
}

TEST(BytecodeFuzzTest, DecodeSurvivesMutatedEncodings) {
  KnobGuard guard;
  Harness h;
  const CompiledRule plans[] = {
      h.Lowered("h0(x, z) :- a(x, y), g(y, z)."),
      h.Lowered("h1(x, y) :- a(x, y), not b(x, y)."),
      h.Lowered("t(x, y, z) :- e(x, y), e(y, z), e(x, z)."),
  };
  std::mt19937_64 rng(0x5E12A115ull);
  bytecode::Program out;
  std::string error;
  for (const CompiledRule& plan : plans) {
    ASSERT_FALSE(plan.bytecode_program().empty());
    const std::vector<std::uint8_t> bytes =
        bytecode::Encode(plan.bytecode_program());
    for (int iter = 0; iter < 300; ++iter) {
      std::vector<std::uint8_t> mutated = bytes;
      // 1-4 random byte edits: flips, truncations, extensions.
      const int edits = 1 + static_cast<int>(rng() % 4);
      for (int e = 0; e < edits; ++e) {
        switch (rng() % 8) {
          case 0:
            if (!mutated.empty()) mutated.resize(rng() % mutated.size());
            break;
          case 1:
            mutated.push_back(static_cast<std::uint8_t>(rng()));
            break;
          default:
            if (!mutated.empty()) {
              mutated[rng() % mutated.size()] ^=
                  static_cast<std::uint8_t>(1u << (rng() % 8));
            }
        }
      }
      if (bytecode::Decode(mutated.data(), mutated.size(), &out, &error)) {
        // Whatever Decode accepts must also stand up to the validator's
        // structural checks -- Decode is allowed to be more permissive
        // only about things Validate then catches.
        bytecode::Validate(out, &error);
      }
    }
  }
}

TEST(BytecodeFuzzTest, RandomInstructionStreamsRejectedOrSafe) {
  KnobGuard guard;
  Harness h;
  // Two descriptor scaffolds so both plan shapes (and the seek ops) are
  // reachable: random code is grafted onto real step/probe tables.
  const CompiledRule left_deep = h.Lowered("h2(x, z) :- a(x, y), g(y, z).");
  const CompiledRule multiway =
      h.Lowered("t2(x, y, z) :- e(x, y), e(y, z), e(x, z).");
  ASSERT_FALSE(left_deep.bytecode_program().empty());
  ASSERT_FALSE(multiway.bytecode_program().empty());

  std::mt19937_64 rng(0xF0CC1A57ull);
  std::size_t validated = 0;
  std::size_t executed = 0;
  for (int iter = 0; iter < 1200; ++iter) {
    bytecode::Program p = (iter % 2 == 0 ? left_deep : multiway)
                              .bytecode_program();
    const std::size_t len = 1 + rng() % 12;
    p.code.clear();
    for (std::size_t pc = 0; pc < len; ++pc) {
      bytecode::Insn insn;
      // Bias toward real opcodes but occasionally emit garbage ones so
      // the "invalid opcode" path stays covered.
      insn.op = static_cast<bytecode::Op>(rng() % (bytecode::kNumOps + 2));
      insn.a = static_cast<std::uint32_t>(rng() % 6);
      insn.b = static_cast<std::uint32_t>(rng() % 6);
      insn.c = static_cast<std::uint32_t>(rng() % 6);
      insn.t = static_cast<std::uint32_t>(rng() % (len + 2));
      p.code.push_back(insn);
    }
    if (!bytecode::Validate(p)) continue;
    ++validated;
    // The validator proves memory safety, not termination; only execute
    // streams whose control flow is strictly forward (these halt within
    // |code| dispatches by construction).
    bool forward_only = true;
    for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
      const bytecode::Op op = p.code[pc].op;
      const bool uses_target =
          op != bytecode::Op::kHalt && op != bytecode::Op::kLoadKey &&
          op != bytecode::Op::kLoad && op != bytecode::Op::kSeek &&
          op != bytecode::Op::kLoopEmitAll &&
          op != bytecode::Op::kProbeEmitAll &&
          op != bytecode::Op::kSeekEmitAll;
      if (uses_target && p.code[pc].t <= pc) {
        forward_only = false;
        break;
      }
    }
    if (!forward_only) continue;
    ++executed;
    h.RunSafely(p);
  }
  // Keep the fuzz honest: if generation drifts so far that nothing
  // validates (or nothing runs), the test is no longer testing the VM.
  EXPECT_GE(validated, 10u);
  EXPECT_GE(executed, 5u);
}

TEST(BytecodeFuzzTest, MutatedDescriptorTablesRejectedOrSafe) {
  KnobGuard guard;
  Harness h;
  const CompiledRule plans[] = {
      h.Lowered("h3(x, z) :- a(x, y), g(y, z)."),
      h.Lowered("t3(x, y, z) :- e(x, y), e(y, z), e(x, z)."),
  };
  std::mt19937_64 rng(0xDE5C7AB1ull);
  for (const CompiledRule& plan : plans) {
    ASSERT_FALSE(plan.bytecode_program().empty());
    for (int iter = 0; iter < 300; ++iter) {
      bytecode::Program p = plan.bytecode_program();
      // Mutate structured fields only -- the code section stays intact,
      // so accepted mutants still terminate and may be executed.
      switch (rng() % 8) {
        case 0:
          p.num_slots = static_cast<std::uint32_t>(rng() % 8);
          break;
        case 1:
          if (!p.steps.empty()) {
            bytecode::StepDesc& sd = p.steps[rng() % p.steps.size()];
            if (!sd.key_cols.empty()) {
              sd.key_cols[rng() % sd.key_cols.size()] =
                  static_cast<int>(rng() % 6) - 1;
            } else {
              sd.arity = rng() % 5;
            }
          }
          break;
        case 2:
          if (!p.steps.empty()) {
            bytecode::StepDesc& sd = p.steps[rng() % p.steps.size()];
            sd.writes.emplace_back(static_cast<std::uint32_t>(rng() % 8),
                                   static_cast<std::uint32_t>(rng() % 8));
          }
          break;
        case 3:
          if (!p.head.empty()) {
            bytecode::TermDesc& t = p.head[rng() % p.head.size()];
            t.is_constant = rng() % 2 == 0;
            t.index = static_cast<std::uint32_t>(rng() % 16);
          }
          break;
        case 4:
          if (!p.steps.empty()) p.steps[rng() % p.steps.size()].source = 2;
          break;
        case 5:
          if (!p.mw_steps.empty()) {
            bytecode::MwStepDesc& ms = p.mw_steps[rng() % p.mw_steps.size()];
            if (!ms.probes.empty()) {
              bytecode::ProbeDesc& probe = ms.probes[rng() % ms.probes.size()];
              probe.atom = static_cast<std::uint32_t>(rng() % 8);
            }
          } else {
            p.shape = 1;  // multiway shape without multiway steps
          }
          break;
        case 6:
          p.const_pool.clear();
          p.const_ids.clear();
          break;
        case 7:
          if (!p.negated.empty()) {
            bytecode::NegDesc& nd = p.negated[rng() % p.negated.size()];
            nd.terms.push_back(bytecode::TermDesc{
                false, static_cast<std::uint32_t>(rng() % 16), 0});
          } else {
            p.version = static_cast<std::uint32_t>(rng() % 4);
          }
          break;
      }
      if (bytecode::Validate(p)) h.RunSafely(p);
    }
  }
}

}  // namespace
}  // namespace datalog
