#include "eval/rule_matcher.h"

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;

/// RAII reset so a failing assertion cannot leak a disabled knob into
/// other tests.
struct KnobGuard {
  ~KnobGuard() {
    SetGreedyJoinOrdering(true);
    SetIndexLookups(true);
    SetCompiledRulePlans(true);
  }
};

TEST(AblationTest, KnobsDefaultOn) {
  EXPECT_TRUE(GreedyJoinOrderingEnabled());
  EXPECT_TRUE(IndexLookupsEnabled());
  EXPECT_TRUE(CompiledRulePlansEnabled());
}

TEST(AblationTest, ResultsIdenticalWithKnobsOff) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();

  Database reference(symbols);
  AddGraphFacts({GraphShape::kRandom, 12, 24, 4}, a, &reference);
  Database d1(symbols), d2(symbols), d3(symbols);
  d1.UnionWith(reference);
  d2.UnionWith(reference);
  d3.UnionWith(reference);

  ASSERT_TRUE(EvaluateSemiNaive(p, &d1).ok());

  SetGreedyJoinOrdering(false);
  ASSERT_TRUE(EvaluateSemiNaive(p, &d2).ok());
  SetGreedyJoinOrdering(true);

  SetIndexLookups(false);
  ASSERT_TRUE(EvaluateSemiNaive(p, &d3).ok());
  SetIndexLookups(true);

  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d3);
}

TEST(AblationTest, CompiledPlansMatchLegacyMatcher) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();

  Database reference(symbols);
  AddGraphFacts({GraphShape::kRandom, 12, 24, 9}, a, &reference);
  Database d1(symbols), d2(symbols);
  d1.UnionWith(reference);
  d2.UnionWith(reference);

  EvalStats compiled = EvaluateSemiNaive(p, &d1).value();

  SetCompiledRulePlans(false);
  EvalStats legacy = EvaluateSemiNaive(p, &d2).value();
  SetCompiledRulePlans(true);

  EXPECT_EQ(d1, d2);
  EXPECT_EQ(compiled.match.substitutions, legacy.match.substitutions);
}

TEST(AblationTest, IndexLookupsReduceScannedTuples) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "h(x, z) :- e(x, y), e(y, z).\n");
  PredicateId e = symbols->LookupPredicate("e").value();
  Database base(symbols);
  AddGraphFacts({GraphShape::kChain, 64}, e, &base);

  Database with_index(symbols);
  with_index.UnionWith(base);
  EvalStats indexed = EvaluateSemiNaive(p, &with_index).value();

  SetIndexLookups(false);
  Database without_index(symbols);
  without_index.UnionWith(base);
  EvalStats scanned = EvaluateSemiNaive(p, &without_index).value();
  SetIndexLookups(true);

  EXPECT_EQ(with_index, without_index);
  EXPECT_LT(indexed.match.tuples_scanned, scanned.match.tuples_scanned);
}

TEST(AblationTest, GreedyOrderingReducesWorkOnSelectiveBodies) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  // Textual order starts with the huge unselective atom; greedy order
  // starts with the selective constant probe.
  Program p = ParseProgramOrDie(symbols,
                                "out(x, y) :- big(x, y), tiny(0, x).\n");
  PredicateId big = symbols->LookupPredicate("big").value();
  PredicateId tiny = symbols->LookupPredicate("tiny").value();
  Database base(symbols);
  AddGraphFacts({GraphShape::kRandom, 64, 512, 6}, big, &base);
  base.AddFact(tiny, {Value::Int(0), Value::Int(1)});

  Database d1(symbols);
  d1.UnionWith(base);
  EvalStats greedy = EvaluateSemiNaive(p, &d1).value();

  SetGreedyJoinOrdering(false);
  Database d2(symbols);
  d2.UnionWith(base);
  EvalStats textual = EvaluateSemiNaive(p, &d2).value();
  SetGreedyJoinOrdering(true);

  EXPECT_EQ(d1, d2);
  EXPECT_LT(greedy.match.tuples_scanned, textual.match.tuples_scanned);
}

}  // namespace
}  // namespace datalog
