// Conformance of the multiway (worst-case-optimal intersection) plan
// shape against the left-deep executors: identical derived sets and
// substitution counts on every cyclic workload shape, deterministic
// counters within a shape, drift-driven shape flips that never change
// the fixpoint, and the knob interactions (multiway requires index
// lookups; SetIndexLookups(false) must fall back to left-deep).

#include <cstddef>
#include <vector>

#include "eval/compiled_rule.h"
#include "eval/hypergraph.h"
#include "eval/parallel.h"
#include "eval/seminaive.h"
#include "eval/stratified.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/cyclic_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

struct KnobGuard {
  ~KnobGuard() {
    SetGreedyJoinOrdering(true);
    SetIndexLookups(true);
    SetCompiledRulePlans(true);
    SetMultiwayJoins(true);
    SetColumnarStorage(true);
  }
};

Database MakeCyclicDb(const std::shared_ptr<SymbolTable>& symbols,
                      const CyclicOptions& options) {
  Database db(symbols);
  if (options.shape == CyclicShape::kDenseSameGen) {
    PredicateId up = symbols->InternPredicate("up", 2).value();
    PredicateId down = symbols->InternPredicate("down", 2).value();
    PredicateId flat = symbols->InternPredicate("flat", 2).value();
    AddDenseSameGenFacts(options, up, down, flat, &db);
  } else {
    AddCyclicFacts(options, symbols->InternPredicate("e", 2).value(), &db);
  }
  return db;
}

TEST(MultiwayConformanceTest, MultiwayJoinsDefaultOn) {
  EXPECT_TRUE(MultiwayJoinsEnabled());
}

TEST(MultiwayConformanceTest, TriangleBodySelectsMultiwayShape) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols, "e(1, 2). e(2, 3). e(3, 1). e(2, 4).");
  Rule rule = ParseRuleOrDie(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");

  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  EXPECT_EQ(plan.shape(), PlanShape::kMultiway);
  EXPECT_EQ(plan.multiway_steps().size(), 3u);  // one step per variable

  // Acyclic bodies stay left-deep.
  Rule path = ParseRuleOrDie(symbols, "h(x, w) :- e(x, y), e(y, z), e(z, w).");
  CompiledRule path_plan = CompiledRule::Compile(
      path, std::size_t(-1), false, db, nullptr);
  EXPECT_EQ(path_plan.shape(), PlanShape::kLeftDeep);
}

/// Regression: multiway intersection is an index-only strategy, so
/// SetIndexLookups(false) must force the left-deep (scan) shape, not
/// silently keep probing indexes.
TEST(MultiwayConformanceTest, IndexKnobOffDisablesMultiway) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols, "e(1, 2). e(2, 3). e(3, 1). e(2, 4). e(4, 2).");
  Rule rule = ParseRuleOrDie(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");

  SetIndexLookups(false);
  CompiledRule plan = CompiledRule::Compile(
      rule, std::size_t(-1), false, db, nullptr);
  EXPECT_EQ(plan.shape(), PlanShape::kLeftDeep);

  // And the knob flip on an existing multiway plan forces a replan.
  SetIndexLookups(true);
  CompiledRule mw_plan = CompiledRule::Compile(
      rule, std::size_t(-1), false, db, nullptr);
  ASSERT_EQ(mw_plan.shape(), PlanShape::kMultiway);
  SetIndexLookups(false);
  EXPECT_TRUE(mw_plan.NeedsReplan(db, nullptr));
  mw_plan.Replan(db, nullptr);
  EXPECT_EQ(mw_plan.shape(), PlanShape::kLeftDeep);

  // Same fixpoint with the knob off as with it on.
  auto run = [&](bool indexed) {
    SetIndexLookups(indexed);
    Database d(symbols);
    d.UnionWith(db);
    Program p = ParseProgramOrDie(
        symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).\n");
    EvalStats stats = EvaluateSemiNaive(p, &d).value();
    return std::pair<Database, std::uint64_t>(std::move(d),
                                              stats.match.substitutions);
  };
  auto [db_off, subs_off] = run(false);
  auto [db_on, subs_on] = run(true);
  EXPECT_EQ(db_off, db_on);
  EXPECT_EQ(subs_off, subs_on);
}

TEST(MultiwayConformanceTest, MultiwayKnobOffKeepsLeftDeep) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "e(1, 2). e(2, 3). e(3, 1).");
  Rule rule = ParseRuleOrDie(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");
  SetMultiwayJoins(false);
  CompiledRule plan = CompiledRule::Compile(
      rule, std::size_t(-1), false, db, nullptr);
  EXPECT_EQ(plan.shape(), PlanShape::kLeftDeep);
  SetMultiwayJoins(true);
  EXPECT_TRUE(plan.NeedsReplan(db, nullptr));
}

/// Every cyclic workload shape: the multiway and left-deep shapes derive
/// the same fixpoint with the same substitution count (assignments are
/// shape-independent; probe/scan counters are not compared).
TEST(MultiwayConformanceTest, IdenticalDerivedSetsAcrossShapes) {
  KnobGuard guard;
  const CyclicShape shapes[] = {CyclicShape::kTriangle, CyclicShape::kKCycle,
                                CyclicShape::kClique,
                                CyclicShape::kDenseSameGen};
  for (CyclicShape shape : shapes) {
    CyclicOptions options;
    options.shape = shape;
    options.num_nodes = 24;
    options.num_edges = 72;
    options.num_hubs = 2;
    options.seed = 7;
    auto symbols = MakeSymbols();
    Program program =
        ParseProgramOrDie(symbols, CyclicProgramText(options));
    Database edb = MakeCyclicDb(symbols, options);

    SetMultiwayJoins(true);
    Database d1(symbols);
    d1.UnionWith(edb);
    EvalStats s1 = EvaluateSemiNaive(program, &d1).value();

    SetMultiwayJoins(false);
    Database d2(symbols);
    d2.UnionWith(edb);
    EvalStats s2 = EvaluateSemiNaive(program, &d2).value();

    EXPECT_EQ(d1, d2) << "shape " << static_cast<int>(shape);
    EXPECT_EQ(s1.match.substitutions, s2.match.substitutions)
        << "shape " << static_cast<int>(shape);
    EXPECT_GT(d1.NumFacts(), edb.NumFacts())
        << "workload derived nothing; shape " << static_cast<int>(shape);
  }
}

/// Within one shape the engine is deterministic: every counter and the
/// result repeat bit for bit across runs (the frontier order is fixed).
TEST(MultiwayConformanceTest, DeterministicWithinShape) {
  KnobGuard guard;
  CyclicOptions options;
  options.num_nodes = 32;
  options.seed = 11;
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, CyclicProgramText(options));
  Database edb = MakeCyclicDb(symbols, options);

  EvalStats first;
  Database d1(symbols);
  d1.UnionWith(edb);
  first = EvaluateSemiNaive(program, &d1).value();

  EvalStats second;
  Database d2(symbols);
  d2.UnionWith(edb);
  second = EvaluateSemiNaive(program, &d2).value();

  EXPECT_EQ(d1, d2);
  EXPECT_EQ(first.match.substitutions, second.match.substitutions);
  EXPECT_EQ(first.match.index_lookups, second.match.index_lookups);
  EXPECT_EQ(first.match.tuples_scanned, second.match.tuples_scanned);
}

/// A plan compiled while a body relation is still empty stays left-deep;
/// the >= 4x cardinality drift check notices the fill-in, the replan
/// upgrades the shape, and the derived set is unchanged.
TEST(MultiwayConformanceTest, DriftReplanFlipsShapeWithoutChangingFixpoint) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId e = symbols->InternPredicate("e", 2).value();
  Rule rule = ParseRuleOrDie(symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).");

  CompiledRule plan = CompiledRule::Compile(
      rule, std::size_t(-1), false, db, nullptr);
  EXPECT_EQ(plan.shape(), PlanShape::kLeftDeep);  // e is empty

  CyclicOptions options;
  options.num_nodes = 16;
  options.seed = 3;
  AddCyclicFacts(options, e, &db);
  ASSERT_TRUE(plan.NeedsReplan(db, nullptr));
  plan.Replan(db, nullptr);
  EXPECT_EQ(plan.shape(), PlanShape::kMultiway);

  plan.EnsureIndexes(db, nullptr);
  Database out_mw(symbols);
  MatchStats stats_mw;
  const std::size_t added_mw = plan.Apply(db, nullptr, nullptr, &out_mw,
                                          &stats_mw);

  SetMultiwayJoins(false);
  CompiledRule left = CompiledRule::Compile(
      rule, std::size_t(-1), false, db, nullptr);
  ASSERT_EQ(left.shape(), PlanShape::kLeftDeep);
  left.EnsureIndexes(db, nullptr);
  Database out_ld(symbols);
  MatchStats stats_ld;
  const std::size_t added_ld = left.Apply(db, nullptr, nullptr, &out_ld,
                                          &stats_ld);

  EXPECT_EQ(added_mw, added_ld);
  EXPECT_EQ(out_mw, out_ld);
  EXPECT_EQ(stats_mw.substitutions, stats_ld.substitutions);
  EXPECT_GT(added_mw, 0u);
}

TEST(MultiwayConformanceTest, EmptyRelationDerivesNothing) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db(symbols);
  symbols->InternPredicate("e", 2).value();
  Program program = ParseProgramOrDie(
      symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).\n");
  Database d(symbols);
  d.UnionWith(db);
  EvalStats stats = EvaluateSemiNaive(program, &d).value();
  EXPECT_EQ(d.NumFacts(), 0u);
  EXPECT_EQ(stats.match.substitutions, 0u);
}

TEST(MultiwayConformanceTest, SingleTupleEdgeCases) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  // A single self-loop closes a triangle through itself.
  Database loop_db = ParseDatabaseOrDie(symbols, "e(5, 5).");
  Program program = ParseProgramOrDie(
      symbols, "t(x, y, z) :- e(x, y), e(y, z), e(z, x).\n");
  for (bool multiway : {true, false}) {
    SetMultiwayJoins(multiway);
    Database d(symbols);
    d.UnionWith(loop_db);
    EvaluateSemiNaive(program, &d).value();
    PredicateId t = symbols->LookupPredicate("t").value();
    EXPECT_EQ(d.relation(t).size(), 1u) << "multiway=" << multiway;
  }
  // A single plain edge closes nothing.
  Database edge_db = ParseDatabaseOrDie(symbols, "e(1, 2).");
  for (bool multiway : {true, false}) {
    SetMultiwayJoins(multiway);
    Database d(symbols);
    d.UnionWith(edge_db);
    EvalStats stats = EvaluateSemiNaive(program, &d).value();
    EXPECT_EQ(stats.match.substitutions, 0u) << "multiway=" << multiway;
  }
}

/// The parallel engines share CompiledRule plans (EnsureIndexes runs
/// single-threaded, Apply is read-only): fixpoints and substitution
/// counts match the sequential run on multiway-shaped rules.
TEST(MultiwayConformanceTest, ParallelEnginesAgreeOnMultiwayRules) {
  KnobGuard guard;
  CyclicOptions options;
  options.num_nodes = 24;
  options.num_hubs = 2;
  options.seed = 19;
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, CyclicProgramText(options));
  Database edb = MakeCyclicDb(symbols, options);

  Database seq(symbols);
  seq.UnionWith(edb);
  EvalStats seq_stats = EvaluateSemiNaive(program, &seq).value();

  Database par(symbols);
  par.UnionWith(edb);
  EvalStats par_stats =
      EvaluateSemiNaiveParallel(program, &par, /*num_threads=*/4).value();

  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq_stats.match.substitutions, par_stats.match.substitutions);

  Database scc(symbols);
  scc.UnionWith(edb);
  EvalStats scc_stats =
      EvaluateSemiNaiveSccParallel(program, &scc, /*num_threads=*/4).value();
  EXPECT_EQ(seq, scc);
  EXPECT_EQ(seq_stats.match.substitutions, scc_stats.match.substitutions);
}

/// Stratified negation on top of a cyclic positive body: the negated
/// literal is checked at the emit boundary in id space on the multiway
/// path; the fixpoint must match the left-deep shape.
TEST(MultiwayConformanceTest, StratifiedNegationAgreesAcrossShapes) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "banned(1).\n"
      "t(x, y, z) :- e(x, y), e(y, z), e(z, x), not banned(x).\n");
  CyclicOptions options;
  options.num_nodes = 16;
  options.seed = 23;
  Database edb(symbols);
  AddCyclicFacts(options, symbols->LookupPredicate("e").value(), &edb);

  SetMultiwayJoins(true);
  Database d1(symbols);
  d1.UnionWith(edb);
  EvalStats s1 = EvaluateStratified(program, &d1).value();

  SetMultiwayJoins(false);
  Database d2(symbols);
  d2.UnionWith(edb);
  EvalStats s2 = EvaluateStratified(program, &d2).value();

  EXPECT_EQ(d1, d2);
  EXPECT_EQ(s1.match.substitutions, s2.match.substitutions);
}

/// The workload generators themselves: planted structures guarantee a
/// non-empty answer for every shape, so benchmark speedup ratios are
/// never measured on empty outputs.
TEST(MultiwayConformanceTest, CyclicWorkloadsDeriveNonEmptyAnswers) {
  KnobGuard guard;
  const CyclicShape shapes[] = {CyclicShape::kTriangle, CyclicShape::kKCycle,
                                CyclicShape::kClique,
                                CyclicShape::kDenseSameGen};
  for (CyclicShape shape : shapes) {
    CyclicOptions options;
    options.shape = shape;
    options.num_nodes = 20;
    options.seed = 5;
    auto symbols = MakeSymbols();
    Program program = ParseProgramOrDie(symbols, CyclicProgramText(options));
    Database d = MakeCyclicDb(symbols, options);
    EvaluateSemiNaive(program, &d).value();
    PredicateId head =
        symbols->LookupPredicate(CyclicHeadName(shape)).value();
    EXPECT_GT(d.relation(head).size(), 0u)
        << "shape " << static_cast<int>(shape);
  }
}

}  // namespace
}  // namespace datalog
