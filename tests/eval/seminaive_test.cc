#include "eval/seminaive.h"

#include "eval/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

constexpr const char* kTransitiveClosure =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

TEST(SemiNaiveTest, PaperExample2) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 4). a(4, 1).");
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  Database expected = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(1, 4). a(4, 1)."
      "g(1, 2). g(1, 4). g(4, 1). g(1, 1). g(4, 4). g(4, 2).");
  EXPECT_EQ(db, expected) << db.ToString();
}

TEST(SemiNaiveTest, IdbAsInput) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  // Example 4's uniform-equivalence scenario: empty A, nonempty G.
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(3)}));
  EXPECT_EQ(db.NumFacts(), 3u);
}

TEST(SemiNaiveTest, ProgramFacts) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "a(1, 2).\n"
                                "a(2, 3).\n"
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db(symbols);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(3)}));
}

TEST(SemiNaiveTest, MatchesNaiveOnChain) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  PredicateId a = symbols->LookupPredicate("a").value();
  Database d1(symbols), d2(symbols);
  AddGraphFacts({GraphShape::kChain, 24}, a, &d1);
  AddGraphFacts({GraphShape::kChain, 24}, a, &d2);
  ASSERT_TRUE(EvaluateNaive(p, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &d2).ok());
  EXPECT_EQ(d1, d2);
}

struct ShapeParam {
  GraphShape shape;
  std::size_t nodes;
  std::size_t edges;
};

class SemiNaiveEquivalenceTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(SemiNaiveEquivalenceTest, AgreesWithNaive) {
  // Property: semi-naive computes exactly the naive fixpoint on every
  // graph shape, including cyclic ones.
  const ShapeParam param = GetParam();
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n"
                                "h(x, z) :- g(x, y), g(y, z), a(z, x).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database d1(symbols), d2(symbols);
  GraphOptions options{param.shape, param.nodes, param.edges, 7};
  AddGraphFacts(options, a, &d1);
  AddGraphFacts(options, a, &d2);
  ASSERT_TRUE(EvaluateNaive(p, &d1).ok());
  Result<EvalStats> stats = EvaluateSemiNaive(p, &d2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(d1, d2);
  // Semi-naive does strictly less join work than naive on recursive
  // workloads of this size.
  Database d3(symbols);
  AddGraphFacts(options, a, &d3);
  Result<EvalStats> naive_stats = EvaluateNaive(p, &d3);
  ASSERT_TRUE(naive_stats.ok());
  EXPECT_LE(stats->match.substitutions, naive_stats->match.substitutions);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SemiNaiveEquivalenceTest,
    ::testing::Values(ShapeParam{GraphShape::kChain, 16, 0},
                      ShapeParam{GraphShape::kCycle, 12, 0},
                      ShapeParam{GraphShape::kBinaryTree, 31, 0},
                      ShapeParam{GraphShape::kGrid, 25, 0},
                      ShapeParam{GraphShape::kRandom, 20, 30},
                      ShapeParam{GraphShape::kRandom, 15, 60}));

TEST(SemiNaiveTest, PerRuleStatsBreakDownTheWork) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Result<EvalStats> stats = EvaluateSemiNaive(p, &db);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->per_rule.size(), 2u);
  // The base rule contributes the 3 copies of a; the recursive rule the
  // other 3 closure facts.
  EXPECT_EQ(stats->per_rule[0].facts, 3u);
  EXPECT_EQ(stats->per_rule[1].facts, 3u);
  // Totals reconcile.
  std::uint64_t facts = 0, subs = 0;
  for (const RuleStats& rs : stats->per_rule) {
    facts += rs.facts;
    subs += rs.substitutions;
  }
  EXPECT_EQ(facts, stats->facts_derived);
  EXPECT_EQ(subs, stats->match.substitutions);
}

TEST(SemiNaiveTest, OldDeltaFullCoversEachDerivationExactlyOnce) {
  // On a chain 0..n-1, the doubly recursive TC program has exactly
  // C(n,3) instantiations of the recursive rule (one per i<j<k) and n-1
  // of the base rule. The old/delta/full scheme must find each exactly
  // once, so the substitution counter equals the closed form.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  PredicateId a = symbols->LookupPredicate("a").value();
  for (std::size_t n : {8u, 12u, 16u}) {
    Database db(symbols);
    AddGraphFacts({GraphShape::kChain, n}, a, &db);
    Result<EvalStats> stats = EvaluateSemiNaive(p, &db);
    ASSERT_TRUE(stats.ok());
    std::uint64_t expected = n * (n - 1) * (n - 2) / 6 + (n - 1);
    EXPECT_EQ(stats->match.substitutions, expected) << "n=" << n;
  }
}

TEST(SccSemiNaiveTest, MatchesPlainSemiNaive) {
  // Multi-layer program: reach feeds pairs feeds triangles.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "reach(x, z) :- a(x, z).\n"
      "reach(x, z) :- a(x, y), reach(y, z).\n"
      "pairs(x, z) :- reach(x, z), reach(z, x).\n"
      "tri(x) :- pairs(x, y), a(y, x).\n");
  Database base(symbols);
  PredicateId a = symbols->LookupPredicate("a").value();
  AddGraphFacts({GraphShape::kRandom, 10, 20, 13}, a, &base);

  Database d1(symbols), d2(symbols);
  d1.UnionWith(base);
  d2.UnionWith(base);
  Result<EvalStats> plain = EvaluateSemiNaive(p, &d1);
  Result<EvalStats> scc = EvaluateSemiNaiveScc(p, &d2);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(scc.ok());
  EXPECT_EQ(d1, d2);
  // SCC-wise evaluation never does MORE rule-application passes; on this
  // layered program it does fewer (upper layers skip the closure's
  // rounds).
  EXPECT_LE(scc->rule_applications, plain->rule_applications);
  // Per-rule breakdown stays program-indexed.
  ASSERT_EQ(scc->per_rule.size(), p.NumRules());
  EXPECT_GT(scc->per_rule[0].facts + scc->per_rule[1].facts, 0u);
}

TEST(SccSemiNaiveTest, HandlesFactsAndSingleScc) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "a(1, 2).\n"
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db(symbols);
  ASSERT_TRUE(EvaluateSemiNaiveScc(p, &db).ok());
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(2)}));
}

TEST(SemiNaiveTest, EmptyProgramIsIdentity) {
  auto symbols = MakeSymbols();
  Program p(symbols);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.NumFacts(), 1u);
}

}  // namespace
}  // namespace datalog
