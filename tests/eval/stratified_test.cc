#include "eval/stratified.h"

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

TEST(StratifiedTest, MatchesSemiNaiveOnPositivePrograms) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database d1 = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 1).");
  Database d2(symbols);
  d2.UnionWith(d1);
  ASSERT_TRUE(EvaluateSemiNaive(p, &d1).ok());
  ASSERT_TRUE(EvaluateStratified(p, &d2).ok());
  EXPECT_EQ(d1, d2);
}

TEST(StratifiedTest, UnreachableNodes) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "reach(x) :- source(x).\n"
      "reach(y) :- reach(x), edge(x, y).\n"
      "unreached(x) :- node(x), not reach(x).\n");
  Database db = ParseDatabaseOrDie(symbols,
                                   "node(1). node(2). node(3). node(4)."
                                   "source(1). edge(1, 2). edge(3, 4).");
  ASSERT_TRUE(EvaluateStratified(p, &db).ok());
  PredicateId unreached = symbols->LookupPredicate("unreached").value();
  EXPECT_FALSE(db.Contains(unreached, {Value::Int(1)}));
  EXPECT_FALSE(db.Contains(unreached, {Value::Int(2)}));
  EXPECT_TRUE(db.Contains(unreached, {Value::Int(3)}));
  EXPECT_TRUE(db.Contains(unreached, {Value::Int(4)}));
}

TEST(StratifiedTest, TwoNegationLevels) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "b(x) :- u(x), not a(x).\n"
                                "c(x) :- u(x), not b(x).\n"
                                "a(x) :- v(x).\n");
  Database db = ParseDatabaseOrDie(symbols, "u(1). u(2). v(1).");
  ASSERT_TRUE(EvaluateStratified(p, &db).ok());
  PredicateId b = symbols->LookupPredicate("b").value();
  PredicateId c = symbols->LookupPredicate("c").value();
  // a = {1}; b = u minus a = {2}; c = u minus b = {1}.
  EXPECT_TRUE(db.Contains(b, {Value::Int(2)}));
  EXPECT_FALSE(db.Contains(b, {Value::Int(1)}));
  EXPECT_TRUE(db.Contains(c, {Value::Int(1)}));
  EXPECT_FALSE(db.Contains(c, {Value::Int(2)}));
}

TEST(StratifiedTest, NegationWithinRecursionRejected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "win(x) :- move(x, y), not win(y).\n");
  Database db = ParseDatabaseOrDie(symbols, "move(1, 2).");
  Result<EvalStats> r = EvaluateStratified(p, &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StratifiedTest, NegationOfPurelyExtensionalPredicate) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- u(x), not q(x).\n");
  Database db = ParseDatabaseOrDie(symbols, "u(1). u(2). q(2).");
  ASSERT_TRUE(EvaluateStratified(p, &db).ok());
  PredicateId pr = symbols->LookupPredicate("p").value();
  EXPECT_TRUE(db.Contains(pr, {Value::Int(1)}));
  EXPECT_FALSE(db.Contains(pr, {Value::Int(2)}));
}

}  // namespace
}  // namespace datalog
