#include "ast/atom.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(AtomTest, GroundDetection) {
  Atom ground(0, {Term::Int(1), Term::Int(2)});
  Atom open(0, {Term::Int(1), Term::Variable(0)});
  EXPECT_TRUE(ground.IsGround());
  EXPECT_FALSE(open.IsGround());
}

TEST(AtomTest, ZeroArityIsGround) {
  Atom nullary(0, {});
  EXPECT_TRUE(nullary.IsGround());
  EXPECT_EQ(nullary.arity(), 0);
}

TEST(AtomTest, VariablesCollectsSet) {
  // G(x, y, x) has variables {x, y}, each once.
  Atom atom(0, {Term::Variable(1), Term::Variable(2), Term::Variable(1)});
  std::set<VariableId> vars = atom.Variables();
  EXPECT_EQ(vars, (std::set<VariableId>{1, 2}));
}

TEST(AtomTest, AppendVariablesKeepsDuplicatesInOrder) {
  Atom atom(0, {Term::Variable(2), Term::Int(5), Term::Variable(2)});
  std::vector<VariableId> vars;
  atom.AppendVariables(&vars);
  EXPECT_EQ(vars, (std::vector<VariableId>{2, 2}));
}

TEST(AtomTest, ContainsVariable) {
  Atom atom(0, {Term::Variable(3), Term::Int(1)});
  EXPECT_TRUE(atom.ContainsVariable(3));
  EXPECT_FALSE(atom.ContainsVariable(1));
}

TEST(AtomTest, EqualityIncludesPredicate) {
  Atom a(0, {Term::Int(1)});
  Atom b(1, {Term::Int(1)});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Atom(0, {Term::Int(1)}));
}

TEST(AtomTest, HashAgreesWithEquality) {
  Atom a(0, {Term::Variable(1), Term::Int(2)});
  Atom b(0, {Term::Variable(1), Term::Int(2)});
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(LiteralTest, NegationDistinguishes) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- q(x), not r(x).");
  ASSERT_EQ(rule.body().size(), 2u);
  EXPECT_FALSE(rule.body()[0].negated);
  EXPECT_TRUE(rule.body()[1].negated);
  EXPECT_NE(rule.body()[0], rule.body()[1]);
}

}  // namespace
}  // namespace datalog
