#include "ast/program.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;

constexpr const char* kTransitiveClosure =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

TEST(ProgramTest, IntentionalAndExtensional) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  auto g = symbols->LookupPredicate("g");
  auto a = symbols->LookupPredicate("a");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(p.IntentionalPredicates(), std::set<PredicateId>{g.value()});
  EXPECT_EQ(p.ExtensionalPredicates(), std::set<PredicateId>{a.value()});
  EXPECT_TRUE(p.IsIntentional(g.value()));
  EXPECT_FALSE(p.IsIntentional(a.value()));
}

TEST(ProgramTest, AllPredicates) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  EXPECT_EQ(p.AllPredicates().size(), 2u);
}

TEST(ProgramTest, Example5AllIntentional) {
  // Example 5: adding a(x,z) :- a(x,y), g(y,z) makes every predicate
  // intentional.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n"
                                "a(x, z) :- a(x, y), g(y, z).\n");
  EXPECT_EQ(p.IntentionalPredicates().size(), 2u);
  EXPECT_TRUE(p.ExtensionalPredicates().empty());
}

TEST(ProgramTest, WithoutRule) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Program smaller = p.WithoutRule(1);
  EXPECT_EQ(smaller.NumRules(), 1u);
  EXPECT_EQ(p.NumRules(), 2u);
  EXPECT_EQ(smaller.rules()[0], p.rules()[0]);
}

TEST(ProgramTest, WithRuleReplaced) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Rule replacement = testing::ParseRuleOrDie(symbols, "g(x, z) :- a(z, x).");
  Program q = p.WithRuleReplaced(0, replacement);
  EXPECT_EQ(q.rules()[0], replacement);
  EXPECT_NE(p, q);
}

TEST(ProgramTest, TotalBodyLiterals) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  EXPECT_EQ(p.TotalBodyLiterals(), 3u);
}

TEST(ProgramTest, SharedSymbolTable) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  EXPECT_EQ(p.symbols().get(), symbols.get());
}

}  // namespace
}  // namespace datalog
