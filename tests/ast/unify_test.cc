#include "ast/unify.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(UnifyTest, VariableWithConstant) {
  Substitution subst;
  EXPECT_TRUE(UnifyTerms(Term::Variable(0), Term::Int(5), &subst));
  EXPECT_EQ(subst.Resolve(Term::Variable(0)), Term::Int(5));
}

TEST(UnifyTest, ConstantsMustMatch) {
  Substitution subst;
  EXPECT_TRUE(UnifyTerms(Term::Int(5), Term::Int(5), &subst));
  EXPECT_FALSE(UnifyTerms(Term::Int(5), Term::Int(6), &subst));
}

TEST(UnifyTest, VariableWithVariable) {
  Substitution subst;
  EXPECT_TRUE(UnifyTerms(Term::Variable(0), Term::Variable(1), &subst));
  // Binding either one afterwards resolves both.
  EXPECT_TRUE(UnifyTerms(Term::Variable(1), Term::Int(3), &subst));
  EXPECT_EQ(subst.Resolve(Term::Variable(0)), Term::Int(3));
}

TEST(UnifyTest, SelfUnificationIsNoOp) {
  Substitution subst;
  EXPECT_TRUE(UnifyTerms(Term::Variable(0), Term::Variable(0), &subst));
  EXPECT_TRUE(subst.empty());
}

TEST(UnifyTest, AtomsDifferentPredicatesFail) {
  Substitution subst;
  Atom a(0, {Term::Variable(0)});
  Atom b(1, {Term::Variable(0)});
  EXPECT_FALSE(UnifyAtoms(a, b, &subst));
}

TEST(UnifyTest, AtomsUnifyArgumentWise) {
  // g(x, 3) with g(7, y): x -> 7, y -> 3.
  Substitution subst;
  Atom a(0, {Term::Variable(0), Term::Int(3)});
  Atom b(0, {Term::Int(7), Term::Variable(1)});
  ASSERT_TRUE(UnifyAtoms(a, b, &subst));
  EXPECT_EQ(subst.Resolve(Term::Variable(0)), Term::Int(7));
  EXPECT_EQ(subst.Resolve(Term::Variable(1)), Term::Int(3));
}

TEST(UnifyTest, RepeatedVariableForcesEquality) {
  // g(x, x) with g(1, 2) fails; with g(2, 2) succeeds.
  Substitution fail;
  Atom head(0, {Term::Variable(0), Term::Variable(0)});
  EXPECT_FALSE(UnifyAtoms(head, Atom(0, {Term::Int(1), Term::Int(2)}), &fail));
  Substitution ok;
  EXPECT_TRUE(UnifyAtoms(head, Atom(0, {Term::Int(2), Term::Int(2)}), &ok));
}

TEST(UnifyTest, RepeatedVariableMergesOtherSide) {
  // g(x, x) with g(u, v) forces u == v.
  Substitution subst;
  Atom head(0, {Term::Variable(0), Term::Variable(0)});
  Atom other(0, {Term::Variable(1), Term::Variable(2)});
  ASSERT_TRUE(UnifyAtoms(head, other, &subst));
  EXPECT_EQ(subst.Resolve(Term::Variable(1)),
            subst.Resolve(Term::Variable(2)));
}

TEST(RenameApartTest, ProducesFreshVariablesWithSameStructure) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  Rule renamed = RenameApart(rule, symbols.get());
  EXPECT_NE(renamed, rule);
  // No variable is shared with the original.
  std::set<VariableId> original_vars = rule.Variables();
  for (VariableId v : renamed.Variables()) {
    EXPECT_FALSE(original_vars.contains(v));
  }
  // Structure is preserved: same predicates, same sharing pattern.
  EXPECT_EQ(renamed.body().size(), 2u);
  EXPECT_EQ(renamed.head().args()[0], renamed.body()[0].atom.args()[0]);
  EXPECT_EQ(renamed.body()[0].atom.args()[1],
            renamed.body()[1].atom.args()[0]);
}

TEST(RenameApartTest, ConstantsSurvive) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, 3) :- a(x, 3).");
  Rule renamed = RenameApart(rule, symbols.get());
  EXPECT_EQ(renamed.head().args()[1], Term::Int(3));
}

}  // namespace
}  // namespace datalog
