// Adversarial parser inputs beyond the happy paths of parser_test.cc.

#include "ast/parser.h"

#include "ast/pretty_print.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

TEST(ParserEdgeTest, EmptyInputIsEmptyProgram) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<Program> p = parser.ParseProgram("");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumRules(), 0u);
}

TEST(ParserEdgeTest, OnlyCommentsAndWhitespace) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<Program> p = parser.ParseProgram(
      "  % nothing here\n\t// nor here\n\n   ");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumRules(), 0u);
}

TEST(ParserEdgeTest, CommentAtEndOfFileWithoutNewline) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<Program> p = parser.ParseProgram("a(1). % trailing");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumRules(), 1u);
}

TEST(ParserEdgeTest, Int64Boundaries) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<Rule> max =
      parser.ParseRule("p(9223372036854775807) :- q(9223372036854775807).");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->head().args()[0], Term::Int(9223372036854775807LL));
  // Out of range must be a clean error, not UB.
  Result<Rule> over = parser.ParseRule("p(9223372036854775808) :- q(1).");
  EXPECT_FALSE(over.ok());
}

TEST(ParserEdgeTest, DanglingMinusIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("p(x) :- q(x), - .").ok());
}

TEST(ParserEdgeTest, ColonWithoutDashIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("p(x) : q(x).").ok());
}

TEST(ParserEdgeTest, QuestionWithoutDashIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseQuery("? g(1, x).").ok());
}

TEST(ParserEdgeTest, MissingClosingParen) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("p(x :- q(x).").ok());
}

TEST(ParserEdgeTest, EmptyBodyAfterColonDashIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("p(1) :- .").ok());
}

TEST(ParserEdgeTest, TgdWithoutArrowIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseTgd("g(x, z), a(x, w).").ok());
}

TEST(ParserEdgeTest, TgdMissingRhsIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseTgd("g(x, z) -> .").ok());
}

TEST(ParserEdgeTest, SingleQuoteInsideDoubleQuotedString) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<Rule> r = parser.ParseRule("p(\"ann's\") :- q(\"ann's\").");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->head().args()[0].value().is_symbol());
}

TEST(ParserEdgeTest, IdentifiersWithUnderscoresAndDigits) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<Rule> r = parser.ParseRule("p_1(x_2) :- q_3(x_2).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(symbols->PredicateName(r->head().predicate()), "p_1");
}

TEST(ParserEdgeTest, NotAsBarePredicateNameRejected) {
  // `not` is reserved for negation; `not(x)` in a body would be
  // ambiguous. The parser treats it as a negation of the following atom,
  // so a lone trailing `not` fails.
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("p(x) :- q(x), not .").ok());
}

TEST(ParserEdgeTest, DeepNestingOfConjunctions) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  std::string body;
  for (int i = 0; i < 200; ++i) {
    if (i != 0) body += ", ";
    body += "e(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
  }
  Result<Rule> r = parser.ParseRule("p(x0, x200) :- " + body + ".");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body().size(), 200u);
  EXPECT_TRUE(r->IsSafe());
}

TEST(ParserEdgeTest, GeneratedProgramsRoundTripThroughPrinter) {
  // Property: printing and reparsing a generated program yields a
  // structurally different-but-equal program (same ids, same structure).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto symbols = MakeSymbols();
    PlantedProgramOptions options;
    options.seed = seed;
    options.planted_atoms = 2;
    options.planted_rules = 1;
    Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
    ASSERT_TRUE(planted.ok());
    std::string printed = ToString(planted->program);
    Parser parser(symbols);
    Result<Program> reparsed = parser.ParseProgram(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(reparsed.value(), planted->program) << printed;
  }
}

}  // namespace
}  // namespace datalog
