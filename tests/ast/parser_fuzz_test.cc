// Parser robustness: random token soup and random byte strings must
// produce clean errors or valid parses -- never crashes, hangs, or
// corrupted symbol tables.

#include <random>
#include <string>

#include "ast/parser.h"
#include "ast/pretty_print.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  const std::vector<std::string> tokens = {
      "p",  "q(", ")", ",",  ".",  ":-", "->", "x",  "y",   "42",
      "-7", "'s'", "not", "!", "&",  "%c\n", "(",  "g(x", "z)", " "};
  std::uniform_int_distribution<std::size_t> pick(0, tokens.size() - 1);
  std::uniform_int_distribution<int> len(1, 60);

  for (int round = 0; round < 40; ++round) {
    std::string soup;
    int n = len(rng);
    for (int i = 0; i < n; ++i) soup += tokens[pick(rng)];
    auto symbols = MakeSymbols();
    Parser parser(symbols);
    Result<Program> program = parser.ParseProgram(soup);
    if (program.ok()) {
      // Whatever parsed must round-trip.
      Parser reparser(symbols);
      Result<Program> again = reparser.ParseProgram(ToString(*program));
      EXPECT_TRUE(again.ok()) << soup;
    } else {
      EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument)
          << soup;
    }
  }
}

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_int_distribution<int> byte(1, 126);  // printable-ish ASCII
  std::uniform_int_distribution<int> len(1, 80);
  for (int round = 0; round < 40; ++round) {
    std::string bytes;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      bytes += static_cast<char>(byte(rng));
    }
    auto symbols = MakeSymbols();
    Parser parser(symbols);
    Result<Program> program = parser.ParseProgram(bytes);
    if (!program.ok()) {
      EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace datalog
