#include "ast/rule.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(RuleTest, FactHasEmptyBody) {
  auto symbols = MakeSymbols();
  Rule fact = ParseRuleOrDie(symbols, "a(1, 2).");
  EXPECT_TRUE(fact.IsFact());
  EXPECT_TRUE(fact.IsPositive());
  EXPECT_TRUE(fact.IsSafe());
}

TEST(RuleTest, SafetyRequiresHeadVarsInBody) {
  auto symbols = MakeSymbols();
  Rule safe = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  EXPECT_TRUE(safe.IsSafe());
  // Head variable y does not appear in the body.
  Rule unsafe = ParseRuleOrDie(symbols, "g(x, y) :- a(x, z).");
  EXPECT_FALSE(unsafe.IsSafe());
}

TEST(RuleTest, SafetyWithNegationRequiresPositiveOccurrence) {
  auto symbols = MakeSymbols();
  Rule safe = ParseRuleOrDie(symbols, "p(x) :- q(x), not r(x).");
  EXPECT_TRUE(safe.IsSafe());
  // w appears only under negation.
  Rule unsafe = ParseRuleOrDie(symbols, "p(x) :- q(x), not r2(x, w).");
  EXPECT_FALSE(unsafe.IsSafe());
}

TEST(RuleTest, NonGroundFactIsUnsafe) {
  auto symbols = MakeSymbols();
  // The paper's Anc(x, x) :- example: rules with empty bodies must be
  // ground.
  Parser parser(symbols);
  Result<Rule> rule = parser.ParseRule("anc(x, x).");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->IsSafe());
}

TEST(RuleTest, PositiveBodyAtomsSkipsNegated) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- q(x), not r(x), s(x).");
  EXPECT_FALSE(rule.IsPositive());
  std::vector<Atom> atoms = rule.PositiveBodyAtoms();
  ASSERT_EQ(atoms.size(), 2u);
}

TEST(RuleTest, VariablesCoverHeadAndBody) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  EXPECT_EQ(rule.Variables().size(), 3u);
  EXPECT_EQ(rule.PositiveBodyVariables().size(), 3u);
}

TEST(RuleTest, WithoutBodyLiteral) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z), b(x, z).");
  Rule smaller = rule.WithoutBodyLiteral(0);
  ASSERT_EQ(smaller.body().size(), 1u);
  // The remaining literal is the former second one.
  EXPECT_EQ(smaller.body()[0], rule.body()[1]);
  // Original is untouched.
  EXPECT_EQ(rule.body().size(), 2u);
}

TEST(RuleTest, EqualityIsStructural) {
  auto symbols = MakeSymbols();
  Rule a = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  Rule b = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  Rule c = ParseRuleOrDie(symbols, "g(x, z) :- a(z, x).");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace datalog
