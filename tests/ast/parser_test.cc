#include "ast/parser.h"

#include "ast/pretty_print.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;
using testing::ParseTgdOrDie;

TEST(ParserTest, SimpleRule) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  EXPECT_EQ(rule.body().size(), 1u);
  EXPECT_EQ(symbols->PredicateName(rule.head().predicate()), "g");
  EXPECT_TRUE(rule.head().args()[0].is_variable());
}

TEST(ParserTest, IntegersAndStringsAreConstants) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "q(x, 3, 'ann', \"bob\") :- p(x).");
  const auto& args = rule.head().args();
  EXPECT_TRUE(args[0].is_variable());
  EXPECT_EQ(args[1], Term::Int(3));
  ASSERT_TRUE(args[2].is_constant());
  EXPECT_TRUE(args[2].value().is_symbol());
  EXPECT_TRUE(args[3].value().is_symbol());
  EXPECT_NE(args[2].value(), args[3].value());
}

TEST(ParserTest, NegativeIntegers) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "q(-5) :- p(-5).");
  EXPECT_EQ(rule.head().args()[0], Term::Int(-5));
}

TEST(ParserTest, RepeatedVariableSharesId) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, x) :- a(x, x).");
  EXPECT_EQ(rule.head().args()[0], rule.head().args()[1]);
}

TEST(ParserTest, Fact) {
  auto symbols = MakeSymbols();
  Rule fact = ParseRuleOrDie(symbols, "a(1, 2).");
  EXPECT_TRUE(fact.IsFact());
  EXPECT_TRUE(fact.head().IsGround());
}

TEST(ParserTest, ZeroArityAtom) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "ready :- init.");
  EXPECT_EQ(rule.head().arity(), 0);
  Rule with_parens = ParseRuleOrDie(symbols, "ready() :- init().");
  EXPECT_EQ(with_parens.head(), rule.head());
}

TEST(ParserTest, NegatedLiterals) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- q(x), not r(x), !s(x).");
  ASSERT_EQ(rule.body().size(), 3u);
  EXPECT_FALSE(rule.body()[0].negated);
  EXPECT_TRUE(rule.body()[1].negated);
  EXPECT_TRUE(rule.body()[2].negated);
}

TEST(ParserTest, Comments) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "% transitive closure\n"
                                "g(x, z) :- a(x, z).  // base case\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  EXPECT_EQ(p.NumRules(), 2u);
}

TEST(ParserTest, MultiRuleProgram) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z). g(x, z) :- g(x, y), "
                                "g(y, z). a(1, 2).");
  EXPECT_EQ(p.NumRules(), 3u);
  EXPECT_TRUE(p.rules()[2].IsFact());
}

TEST(ParserTest, Tgd) {
  auto symbols = MakeSymbols();
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, z) -> a(x, w).");
  EXPECT_EQ(tgd.lhs().size(), 1u);
  EXPECT_EQ(tgd.rhs().size(), 1u);
  EXPECT_FALSE(tgd.IsFull());
}

TEST(ParserTest, TgdWithAmpersandConjunction) {
  auto symbols = MakeSymbols();
  Tgd tgd = ParseTgdOrDie(symbols, "g(y, z) -> g(y, w) & c(w).");
  EXPECT_EQ(tgd.rhs().size(), 2u);
  Tgd tgd2 = ParseTgdOrDie(symbols, "g(x, y) && g(y, z) -> a(y, w).");
  EXPECT_EQ(tgd2.lhs().size(), 2u);
}

TEST(ParserTest, MultipleTgds) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  auto tgds = parser.ParseTgds("g(x,z) -> a(x,w). a(x,y) -> b(y).");
  ASSERT_TRUE(tgds.ok());
  EXPECT_EQ(tgds->size(), 2u);
}

TEST(ParserTest, GroundAtoms) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  auto atoms = parser.ParseGroundAtoms("a(1, 2). a(1, 4). a(4, 1).");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ(atoms->size(), 3u);
}

TEST(ParserTest, GroundAtomsRejectVariables) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  auto atoms = parser.ParseGroundAtoms("a(1, x).");
  EXPECT_FALSE(atoms.ok());
  EXPECT_EQ(atoms.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, Query) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  auto query = parser.ParseQuery("?- g(1, x).");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->args()[0], Term::Int(1));
  EXPECT_TRUE(query->args()[1].is_variable());
}

TEST(ParserTest, ArityMismatchIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  auto p = parser.ParseProgram("g(x, z) :- a(x, z). g(x) :- a(x, x).");
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, SyntaxErrorsCarryLineNumbers) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  auto p = parser.ParseProgram("g(x, z) :- a(x, z).\ng(x, z) :- (x).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos)
      << p.status().ToString();
}

TEST(ParserTest, MissingPeriodIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("g(x, z) :- a(x, z)").ok());
}

TEST(ParserTest, UnterminatedStringIsError) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  EXPECT_FALSE(parser.ParseRule("g('abc) :- a(1).").ok());
}

TEST(ParserTest, PaperSyntaxExample) {
  // The paper's Example 1 program, verbatim modulo capitalization.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "G(x, z) :- A(x, z).\n"
                                "G(x, z) :- G(x, y), G(y, z).\n");
  EXPECT_EQ(p.NumRules(), 2u);
  EXPECT_EQ(ToString(p.rules()[1], *symbols),
            "G(x, z) :- G(x, y), G(y, z).");
}

}  // namespace
}  // namespace datalog
