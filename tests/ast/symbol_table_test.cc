#include "ast/symbol_table.h"

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(SymbolTableTest, PredicateInterningIsStable) {
  SymbolTable table;
  Result<PredicateId> g1 = table.InternPredicate("g", 2);
  Result<PredicateId> g2 = table.InternPredicate("g", 2);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1.value(), g2.value());
  EXPECT_EQ(table.PredicateName(g1.value()), "g");
  EXPECT_EQ(table.PredicateArity(g1.value()), 2);
}

TEST(SymbolTableTest, ArityConflictRejected) {
  SymbolTable table;
  ASSERT_TRUE(table.InternPredicate("g", 2).ok());
  Result<PredicateId> conflict = table.InternPredicate("g", 3);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
  // The original registration is untouched.
  EXPECT_EQ(table.PredicateArity(table.LookupPredicate("g").value()), 2);
}

TEST(SymbolTableTest, LookupMissingPredicate) {
  SymbolTable table;
  Result<PredicateId> missing = table.LookupPredicate("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SymbolTableTest, FreshPredicateAvoidsCollisions) {
  SymbolTable table;
  ASSERT_TRUE(table.InternPredicate("m_g_bf", 1).ok());
  PredicateId fresh = table.FreshPredicate("m_g_bf", 1);
  EXPECT_NE(table.PredicateName(fresh), "m_g_bf");
  EXPECT_EQ(table.PredicateArity(fresh), 1);
  // A hint with no collision is used verbatim.
  PredicateId clean = table.FreshPredicate("m_h_bf", 2);
  EXPECT_EQ(table.PredicateName(clean), "m_h_bf");
}

TEST(SymbolTableTest, FreshPredicatesNeverCollideWithEachOther) {
  SymbolTable table;
  PredicateId a = table.FreshPredicate("p", 1);
  PredicateId b = table.FreshPredicate("p", 1);
  PredicateId c = table.FreshPredicate("p", 1);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(table.PredicateName(a), table.PredicateName(b));
  EXPECT_NE(table.PredicateName(b), table.PredicateName(c));
}

TEST(SymbolTableTest, FreshVariableAvoidsCollisions) {
  SymbolTable table;
  std::int32_t x = table.InternVariable("x");
  std::int32_t fresh = table.FreshVariable("x");
  EXPECT_NE(x, fresh);
  EXPECT_NE(table.VariableName(fresh), "x");
}

TEST(SymbolTableTest, SymbolsAndVariablesAreSeparateNamespaces) {
  SymbolTable table;
  std::int32_t var = table.InternVariable("paris");
  std::int32_t sym = table.InternSymbol("paris");
  // Separate interners: ids may coincide numerically but refer to
  // different tables; both round-trip independently.
  EXPECT_EQ(table.VariableName(var), "paris");
  EXPECT_EQ(table.SymbolText(sym), "paris");
}

TEST(SymbolTableTest, CountsTrackInterning) {
  SymbolTable table;
  EXPECT_EQ(table.NumPredicates(), 0);
  table.InternPredicate("a", 1).value();
  table.InternPredicate("b", 2).value();
  EXPECT_EQ(table.NumPredicates(), 2);
  EXPECT_EQ(table.NumVariables(), 0);
  table.InternVariable("x");
  EXPECT_EQ(table.NumVariables(), 1);
}

}  // namespace
}  // namespace datalog
