#include "ast/validate.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

TEST(ValidateTest, SafeRulePasses) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  EXPECT_TRUE(ValidateRule(rule, *symbols).ok());
}

TEST(ValidateTest, UnsafeHeadVariableRejected) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, y) :- a(x, x).");
  Status s = ValidateRule(rule, *symbols);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, NonGroundFactRejected) {
  // The paper: rules with an empty body are not allowed unless the head
  // has only constants (Section II, the Anc(x, x) example).
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "anc(x, x).");
  EXPECT_FALSE(ValidateRule(rule, *symbols).ok());
}

TEST(ValidateTest, GroundFactAccepted) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(1, 2).");
  EXPECT_TRUE(ValidateRule(rule, *symbols).ok());
}

TEST(ValidateTest, ProgramValidation) {
  auto symbols = MakeSymbols();
  Program good = ParseProgramOrDie(symbols,
                                   "g(x, z) :- a(x, z).\n"
                                   "g(x, z) :- g(x, y), g(y, z).\n");
  EXPECT_TRUE(ValidateProgram(good).ok());
  EXPECT_TRUE(ValidatePositiveProgram(good).ok());
}

TEST(ValidateTest, PositiveValidationRejectsNegation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- q(x), not r(x).\n");
  EXPECT_TRUE(ValidateProgram(p).ok());
  Status s = ValidatePositiveProgram(p);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, UnsafeNegatedVariableRejected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- q(x), not r(x, w).\n");
  EXPECT_FALSE(ValidateProgram(p).ok());
}

TEST(ValidateTest, ErrorMessageNamesTheRule) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, y) :- a(x, x).");
  Status s = ValidateRule(rule, *symbols);
  EXPECT_NE(s.message().find("g(x, y)"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace datalog
