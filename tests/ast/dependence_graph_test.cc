#include "ast/dependence_graph.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;

TEST(DependenceGraphTest, TransitiveClosureIsRecursive) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  DependenceGraph graph(p);
  EXPECT_TRUE(graph.IsRecursive());
  PredicateId g = symbols->LookupPredicate("g").value();
  PredicateId a = symbols->LookupPredicate("a").value();
  EXPECT_TRUE(graph.IsPredicateRecursive(g));
  EXPECT_FALSE(graph.IsPredicateRecursive(a));
  EXPECT_FALSE(graph.IsRuleRecursive(p.rules()[0]));
  EXPECT_TRUE(graph.IsRuleRecursive(p.rules()[1]));
}

TEST(DependenceGraphTest, NonRecursiveProgram) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "s(x, z) :- a(x, y), b(y, z).\n"
                                "t(x) :- s(x, x).\n");
  DependenceGraph graph(p);
  EXPECT_FALSE(graph.IsRecursive());
  EXPECT_FALSE(graph.IsRuleRecursive(p.rules()[0]));
}

TEST(DependenceGraphTest, MutualRecursionDetected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "even(x) :- zero(x).\n"
                                "even(x) :- succ(y, x), odd(y).\n"
                                "odd(x) :- succ(y, x), even(y).\n");
  DependenceGraph graph(p);
  PredicateId even = symbols->LookupPredicate("even").value();
  PredicateId odd = symbols->LookupPredicate("odd").value();
  EXPECT_TRUE(graph.MutuallyRecursive(even, odd));
  EXPECT_TRUE(graph.IsPredicateRecursive(even));
  EXPECT_TRUE(graph.IsRuleRecursive(p.rules()[1]));
  EXPECT_FALSE(graph.IsRuleRecursive(p.rules()[0]));
}

TEST(DependenceGraphTest, Reaches) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "b(x) :- a(x).\n"
                                "c(x) :- b(x).\n");
  DependenceGraph graph(p);
  PredicateId a = symbols->LookupPredicate("a").value();
  PredicateId b = symbols->LookupPredicate("b").value();
  PredicateId c = symbols->LookupPredicate("c").value();
  EXPECT_TRUE(graph.Reaches(a, c));
  EXPECT_TRUE(graph.Reaches(a, b));
  EXPECT_FALSE(graph.Reaches(c, a));
  EXPECT_FALSE(graph.Reaches(a, a));
}

TEST(DependenceGraphTest, LinearVsNonLinear) {
  auto symbols = MakeSymbols();
  Program nonlinear = ParseProgramOrDie(symbols,
                                        "g(x, z) :- a(x, z).\n"
                                        "g(x, z) :- g(x, y), g(y, z).\n");
  DependenceGraph g1(nonlinear);
  EXPECT_FALSE(g1.IsLinear(nonlinear));

  auto symbols2 = MakeSymbols();
  Program linear = ParseProgramOrDie(symbols2,
                                     "g(x, z) :- a(x, z).\n"
                                     "g(x, z) :- a(x, y), g(y, z).\n");
  DependenceGraph g2(linear);
  EXPECT_TRUE(g2.IsLinear(linear));
}

TEST(DependenceGraphTest, StratifiesNegationThroughBase) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "reach(x) :- source(x).\n"
                                "reach(y) :- reach(x), edge(x, y).\n"
                                "unreached(x) :- node(x), not reach(x).\n");
  DependenceGraph graph(p);
  auto strata = graph.Stratify();
  ASSERT_TRUE(strata.ok());
  PredicateId reach = symbols->LookupPredicate("reach").value();
  PredicateId unreached = symbols->LookupPredicate("unreached").value();
  // unreached must live in a strictly higher stratum than reach.
  int reach_stratum = -1, unreached_stratum = -1;
  for (std::size_t s = 0; s < strata->size(); ++s) {
    for (PredicateId pred : (*strata)[s]) {
      if (pred == reach) reach_stratum = static_cast<int>(s);
      if (pred == unreached) unreached_stratum = static_cast<int>(s);
    }
  }
  EXPECT_GE(reach_stratum, 0);
  EXPECT_GT(unreached_stratum, reach_stratum);
}

TEST(DependenceGraphTest, NegationThroughRecursionRejected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "win(x) :- move(x, y), not win(y).\n");
  DependenceGraph graph(p);
  auto strata = graph.Stratify();
  EXPECT_FALSE(strata.ok());
  EXPECT_EQ(strata.status().code(), StatusCode::kInvalidArgument);
}

TEST(DependenceGraphTest, SelfLoopRule) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- p(x).\n");
  DependenceGraph graph(p);
  PredicateId pred = symbols->LookupPredicate("p").value();
  EXPECT_TRUE(graph.IsPredicateRecursive(pred));
  EXPECT_TRUE(graph.IsRuleRecursive(p.rules()[0]));
}

}  // namespace
}  // namespace datalog
