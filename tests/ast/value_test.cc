#include "ast/value.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.payload(), 0);
}

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Int(5).is_int());
  EXPECT_TRUE(Value::Symbol(2).is_symbol());
  EXPECT_TRUE(Value::Frozen(1).is_frozen());
  EXPECT_TRUE(Value::Null(0).is_null());
}

TEST(ValueTest, EqualityRequiresSameKind) {
  // The same payload under different kinds must never compare equal: this
  // is what guarantees frozen constants and nulls can never collide with
  // program constants.
  EXPECT_NE(Value::Int(3), Value::Symbol(3));
  EXPECT_NE(Value::Int(3), Value::Frozen(3));
  EXPECT_NE(Value::Frozen(3), Value::Null(3));
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
}

TEST(ValueTest, NegativeInts) {
  EXPECT_EQ(Value::Int(-7).payload(), -7);
  EXPECT_NE(Value::Int(-7), Value::Int(7));
}

TEST(ValueTest, TotalOrderIsKindMajor) {
  EXPECT_LT(Value::Int(100), Value::Symbol(0));
  EXPECT_LT(Value::Symbol(5), Value::Frozen(0));
  EXPECT_LT(Value::Frozen(5), Value::Null(0));
  EXPECT_LT(Value::Int(1), Value::Int(2));
}

TEST(ValueTest, HashDistinguishesKinds) {
  std::unordered_set<Value> set;
  set.insert(Value::Int(1));
  set.insert(Value::Symbol(1));
  set.insert(Value::Frozen(1));
  set.insert(Value::Null(1));
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.contains(Value::Frozen(1)));
  EXPECT_FALSE(set.contains(Value::Frozen(2)));
}

}  // namespace
}  // namespace datalog
