#include "ast/tgd.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseTgdOrDie;

TEST(TgdTest, VariableClassification) {
  // G(y, z) -> G(y, w) & C(w): universal {y, z}, existential {w}.
  auto symbols = MakeSymbols();
  Tgd tgd = ParseTgdOrDie(symbols, "g(y, z) -> g(y, w), c(w).");
  VariableId y = symbols->InternVariable("y");
  VariableId z = symbols->InternVariable("z");
  VariableId w = symbols->InternVariable("w");
  EXPECT_EQ(tgd.UniversalVariables(), (std::set<VariableId>{y, z}));
  EXPECT_EQ(tgd.ExistentialVariables(), (std::set<VariableId>{w}));
}

TEST(TgdTest, FullTgdHasNoExistentials) {
  // Example 10's tgd is full.
  auto symbols = MakeSymbols();
  Tgd tgd = ParseTgdOrDie(
      symbols, "a(x, y, z), b(w, y, v) -> a(x, y, v), t(w, y, z).");
  EXPECT_TRUE(tgd.IsFull());
  EXPECT_TRUE(tgd.ExistentialVariables().empty());
}

TEST(TgdTest, EmbeddedTgd) {
  auto symbols = MakeSymbols();
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, z) -> a(x, w).");
  EXPECT_FALSE(tgd.IsFull());
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
}

TEST(TgdTest, UniversalVariableAppearingOnBothSides) {
  auto symbols = MakeSymbols();
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> a(x, w), g(w, y).");
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  EXPECT_EQ(tgd.UniversalVariables(), (std::set<VariableId>{x, y}));
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
}

TEST(TgdTest, Equality) {
  auto symbols = MakeSymbols();
  Tgd a = ParseTgdOrDie(symbols, "g(x, z) -> a(x, w).");
  Tgd b = ParseTgdOrDie(symbols, "g(x, z) -> a(x, w).");
  Tgd c = ParseTgdOrDie(symbols, "g(x, z) -> a(z, w).");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace datalog
