#include "ast/term.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(TermTest, VariableAccessors) {
  Term t = Term::Variable(4);
  EXPECT_TRUE(t.is_variable());
  EXPECT_FALSE(t.is_constant());
  EXPECT_EQ(t.var(), 4);
}

TEST(TermTest, ConstantAccessors) {
  Term t = Term::Constant(Value::Int(9));
  EXPECT_TRUE(t.is_constant());
  EXPECT_EQ(t.value(), Value::Int(9));
}

TEST(TermTest, IntShorthand) {
  EXPECT_EQ(Term::Int(12), Term::Constant(Value::Int(12)));
}

TEST(TermTest, VariableAndConstantNeverEqual) {
  // Variable 3 vs the integer constant 3.
  EXPECT_NE(Term::Variable(3), Term::Int(3));
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Variable(1), Term::Variable(1));
  EXPECT_NE(Term::Variable(1), Term::Variable(2));
  EXPECT_EQ(Term::Int(1), Term::Int(1));
}

TEST(TermTest, Hashable) {
  std::unordered_set<Term> set;
  set.insert(Term::Variable(0));
  set.insert(Term::Int(0));
  EXPECT_EQ(set.size(), 2u);
}

TEST(TermTest, DefaultIsConstantZero) {
  Term t;
  EXPECT_TRUE(t.is_constant());
  EXPECT_EQ(t.value(), Value::Int(0));
}

}  // namespace
}  // namespace datalog
