#include "ast/pretty_print.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;
using testing::ParseTgdOrDie;

TEST(PrettyPrintTest, Values) {
  auto symbols = MakeSymbols();
  std::int32_t ann = symbols->InternSymbol("ann");
  EXPECT_EQ(ToString(Value::Int(42), *symbols), "42");
  EXPECT_EQ(ToString(Value::Int(-3), *symbols), "-3");
  EXPECT_EQ(ToString(Value::Symbol(ann), *symbols), "'ann'");
  EXPECT_EQ(ToString(Value::Frozen(3), *symbols), "$c3");
  EXPECT_EQ(ToString(Value::Null(7), *symbols), "~n7");
}

TEST(PrettyPrintTest, SymbolQuoteSelectionRoundTrips) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(\"ann's\") :- q('plain').");
  std::string printed = ToString(rule, *symbols);
  EXPECT_EQ(printed, "p(\"ann's\") :- q('plain').");
  EXPECT_EQ(ParseRuleOrDie(symbols, printed), rule);
}

TEST(PrettyPrintTest, RuleRoundTrip) {
  auto symbols = MakeSymbols();
  const std::string text = "g(x, z) :- g(x, y), g(y, z).";
  Rule rule = ParseRuleOrDie(symbols, text);
  EXPECT_EQ(ToString(rule, *symbols), text);
  // Reparsing the printed form yields the same rule.
  EXPECT_EQ(ParseRuleOrDie(symbols, ToString(rule, *symbols)), rule);
}

TEST(PrettyPrintTest, FactRoundTrip) {
  auto symbols = MakeSymbols();
  Rule fact = ParseRuleOrDie(symbols, "a(1, 2).");
  EXPECT_EQ(ToString(fact, *symbols), "a(1, 2).");
}

TEST(PrettyPrintTest, NegatedLiteral) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- q(x), not r(x).");
  EXPECT_EQ(ToString(rule, *symbols), "p(x) :- q(x), not r(x).");
}

TEST(PrettyPrintTest, ZeroArityAtom) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "ready :- init.");
  EXPECT_EQ(ToString(rule, *symbols), "ready :- init.");
}

TEST(PrettyPrintTest, Program) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  EXPECT_EQ(ToString(p),
            "g(x, z) :- a(x, z).\n"
            "g(x, z) :- g(x, y), g(y, z).\n");
}

TEST(PrettyPrintTest, TgdRoundTrip) {
  auto symbols = MakeSymbols();
  const std::string text = "g(y, z) -> g(y, w), c(w).";
  Tgd tgd = ParseTgdOrDie(symbols, text);
  EXPECT_EQ(ToString(tgd, *symbols), text);
  EXPECT_EQ(ParseTgdOrDie(symbols, ToString(tgd, *symbols)), tgd);
}

}  // namespace
}  // namespace datalog
