#include "ast/substitution.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(SubstitutionTest, ResolveUnboundVariable) {
  Substitution subst;
  Term x = Term::Variable(0);
  EXPECT_EQ(subst.Resolve(x), x);
}

TEST(SubstitutionTest, ResolveConstantIsIdentity) {
  Substitution subst;
  EXPECT_EQ(subst.Resolve(Term::Int(5)), Term::Int(5));
}

TEST(SubstitutionTest, ResolveFollowsChains) {
  // x -> y, y -> 7: Resolve(x) must reach 7.
  Substitution subst;
  subst.Bind(0, Term::Variable(1));
  subst.Bind(1, Term::Int(7));
  EXPECT_EQ(subst.Resolve(Term::Variable(0)), Term::Int(7));
}

TEST(SubstitutionTest, ApplyAtom) {
  Substitution subst;
  subst.Bind(0, Term::Int(1));
  Atom atom(0, {Term::Variable(0), Term::Variable(1)});
  Atom applied = subst.Apply(atom);
  EXPECT_EQ(applied.args()[0], Term::Int(1));
  EXPECT_EQ(applied.args()[1], Term::Variable(1));  // unbound stays
}

TEST(SubstitutionTest, ApplyRule) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  VariableId x = symbols->InternVariable("x");
  Substitution subst;
  subst.Bind(x, Term::Int(9));
  Rule applied = subst.Apply(rule);
  EXPECT_EQ(applied.head().args()[0], Term::Int(9));
  EXPECT_EQ(applied.body()[0].atom.args()[0], Term::Int(9));
}

TEST(SubstitutionTest, IsBound) {
  Substitution subst;
  EXPECT_FALSE(subst.IsBound(3));
  subst.Bind(3, Term::Int(0));
  EXPECT_TRUE(subst.IsBound(3));
  EXPECT_EQ(subst.size(), 1u);
}

}  // namespace
}  // namespace datalog
