// Unit tests for the Tracer and TraceSpan: span recording, RAII close,
// Note() attachment, the disabled fast path, and the Chrome trace-event
// JSON export.

#include "obs/trace.h"

#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace datalog {
namespace {

/// The tracer is process-global; each test starts from a clean, enabled
/// tracer and leaves it disabled for whoever runs next.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Get().Enable(); }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

TEST_F(TracerTest, SpanRecordsBeginAndEndPair) {
  { TraceSpan span("unit/span"); }
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[0].name, "unit/span");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(events[1].name, "unit/span");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST_F(TracerTest, NoteAttachesArgsToClosingEvent) {
  {
    TraceSpan span("unit/args");
    span.Note("facts", 42);
    span.Note("rounds", 7);
  }
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].args.empty());
  ASSERT_EQ(events[1].args.size(), 2u);
  EXPECT_STREQ(events[1].args[0].first, "facts");
  EXPECT_EQ(events[1].args[0].second, 42u);
  EXPECT_STREQ(events[1].args[1].first, "rounds");
  EXPECT_EQ(events[1].args[1].second, 7u);
}

TEST_F(TracerTest, ExplicitEndClosesOnceAndMakesLaterCallsNoOps) {
  {
    TraceSpan span("unit/early");
    span.Note("before", 1);
    span.End();
    EXPECT_FALSE(span.active());
    span.Note("after", 2);  // dropped: span already closed
    span.End();             // idempotent
  }                         // destructor must not close again
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_STREQ(events[1].args[0].first, "before");
}

TEST_F(TracerTest, NestedSpansCloseInnermostFirst) {
  {
    TraceSpan outer("unit/outer");
    { TraceSpan inner("unit/inner"); }
  }
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "unit/outer");
  EXPECT_STREQ(events[1].name, "unit/inner");
  EXPECT_STREQ(events[2].name, "unit/inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(events[3].name, "unit/outer");
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Get().Disable();
  {
    TraceSpan span("unit/ghost");
    span.Note("facts", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Tracer::Get().Events().empty());
}

TEST_F(TracerTest, EnableClearsThePreviousBuffer) {
  { TraceSpan span("unit/first"); }
  EXPECT_EQ(Tracer::Get().Events().size(), 2u);
  Tracer::Get().Enable();
  EXPECT_TRUE(Tracer::Get().Events().empty());
}

TEST_F(TracerTest, SpanOpenedBeforeDisableStillCloses) {
  // A span alive when the tracer is disabled must still record its end:
  // per-thread B/E balance is an invariant of the export format.
  {
    TraceSpan span("unit/straddle");
    Tracer::Get().Disable();
  }
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kEnd);
}

TEST_F(TracerTest, ThreadsGetDistinctSequentialIds) {
  { TraceSpan span("unit/main"); }
  std::thread worker([] { TraceSpan span("unit/worker"); });
  worker.join();
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[2].tid, events[3].tid);
  EXPECT_NE(events[0].tid, events[2].tid);
}

TEST_F(TracerTest, ToJsonEmitsChromeTraceEvents) {
  {
    TraceSpan span("unit/json");
    span.Note("facts", 3);
  }
  std::string json = Tracer::Get().ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit/json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"facts\": 3"), std::string::npos);
  // Well-formed JSON object from start to end.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace datalog
