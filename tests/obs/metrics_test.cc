// Unit tests for the MetricsRegistry: counter accumulation, label
// dimensions, the disabled fast path, deterministic snapshots, and the
// flat JSON export.

#include "obs/metrics.h"

#include <string>

#include "gtest/gtest.h"

namespace datalog {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Get().Clear();
    MetricsRegistry::Get().Enable();
  }
  void TearDown() override {
    MetricsRegistry::Get().Disable();
    MetricsRegistry::Get().Clear();
  }
};

TEST_F(MetricsTest, AddAccumulatesAndValueReads) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("test.counter", {}, 3);
  m.Add("test.counter", {}, 4);
  EXPECT_EQ(m.Value("test.counter", {}), 7u);
  EXPECT_EQ(m.Value("test.untouched", {}), 0u);
}

TEST_F(MetricsTest, LabelsDistinguishSeries) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("eval.iterations", {{"engine", "naive"}}, 5);
  m.Add("eval.iterations", {{"engine", "semi-naive"}}, 2);
  EXPECT_EQ(m.Value("eval.iterations", {{"engine", "naive"}}), 5u);
  EXPECT_EQ(m.Value("eval.iterations", {{"engine", "semi-naive"}}), 2u);
  EXPECT_EQ(m.Value("eval.iterations", {}), 0u);
}

TEST_F(MetricsTest, LabelOrderDoesNotMatter) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("eval.rule.facts", {{"engine", "naive"}, {"rule", "1"}}, 10);
  m.Add("eval.rule.facts", {{"rule", "1"}, {"engine", "naive"}}, 1);
  EXPECT_EQ(m.Value("eval.rule.facts", {{"rule", "1"}, {"engine", "naive"}}),
            11u);
}

TEST_F(MetricsTest, SetOverwrites) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("test.gauge", {}, 100);
  m.Set("test.gauge", {}, 7);
  EXPECT_EQ(m.Value("test.gauge", {}), 7u);
}

TEST_F(MetricsTest, DisabledRegistryIgnoresWrites) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Disable();
  m.Add("test.ghost", {}, 5);
  m.Set("test.ghost2", {}, 5);
  m.Enable();
  EXPECT_EQ(m.Value("test.ghost", {}), 0u);
  EXPECT_EQ(m.Value("test.ghost2", {}), 0u);
  EXPECT_TRUE(m.Snapshot().empty());
}

TEST_F(MetricsTest, ClearDropsCountersButKeepsEnabled) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("test.counter", {}, 1);
  m.Clear();
  EXPECT_TRUE(m.enabled());
  EXPECT_EQ(m.Value("test.counter", {}), 0u);
}

TEST_F(MetricsTest, SnapshotIsSortedByNameThenLabels) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("b.counter", {}, 1);
  m.Add("a.counter", {{"engine", "z"}}, 1);
  m.Add("a.counter", {{"engine", "a"}}, 1);
  std::vector<MetricsRegistry::Entry> entries = m.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.counter");
  EXPECT_EQ(entries[0].labels[0].second, "a");
  EXPECT_EQ(entries[1].name, "a.counter");
  EXPECT_EQ(entries[1].labels[0].second, "z");
  EXPECT_EQ(entries[2].name, "b.counter");
}

TEST_F(MetricsTest, ToJsonRendersNamesLabelsValues) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("eval.facts_derived", {{"engine", "semi-naive"}}, 12);
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"eval.facts_derived\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\": \"semi-naive\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 12"), std::string::npos);
}

TEST_F(MetricsTest, ToJsonEscapesSpecialCharacters) {
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Add("test.quote", {{"label", "a\"b\\c"}}, 1);
  std::string json = m.ToJson();
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

}  // namespace
}  // namespace datalog
