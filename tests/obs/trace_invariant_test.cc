// Structural invariants of the observability layer, held against every
// engine:
//
//  1. Spans nest: on each thread, begin/end events follow stack
//     discipline, every span closes exactly once, and the trace is
//     balanced when the run finishes.
//  2. A disabled tracer emits nothing, whatever runs underneath it.
//  3. The MetricsRegistry counters published by RecordEvalStats equal the
//     EvalStats an engine returned, bit for bit -- including the parallel
//     engine at 4 threads and the per-rule breakdown.

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

struct Workload {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  Database edb;

  explicit Workload(std::shared_ptr<SymbolTable> s)
      : symbols(std::move(s)), edb(symbols) {}
};

/// A small but non-trivial positive workload: two mutually dependent
/// recursive predicates over a random graph, enough for several fixpoint
/// rounds, multiple SCCs, and real parallel fan-out.
Workload MakeWorkload() {
  Workload w(MakeSymbols());
  w.program = ParseProgramOrDie(w.symbols,
                                "t(x, y) :- e(x, y).\n"
                                "t(x, z) :- t(x, y), e(y, z).\n"
                                "s(x, y) :- t(x, y), t(y, x).\n"
                                "s(x, z) :- s(x, y), s(y, z).\n");
  PredicateId e = w.symbols->LookupPredicate("e").value();
  GraphOptions graph;
  graph.shape = GraphShape::kRandom;
  graph.num_nodes = 12;
  graph.num_edges = 24;
  graph.seed = 7;
  AddGraphFacts(graph, e, &w.edb);
  return w;
}

struct EngineRun {
  const char* name;   // label RecordEvalStats publishes under
  Result<EvalStats> (*run)(const Program&, Database*);
};

Result<EvalStats> Parallel4(const Program& p, Database* db) {
  return EvaluateSemiNaiveParallel(p, db, 4);
}
Result<EvalStats> SccParallel4(const Program& p, Database* db) {
  return EvaluateSemiNaiveSccParallel(p, db, 4);
}

const EngineRun kEngines[] = {
    {"naive", EvaluateNaive},
    {"semi-naive", EvaluateSemiNaive},
    {"scc-semi-naive", EvaluateSemiNaiveScc},
    {"stratified", EvaluateStratified},
    {"parallel", Parallel4},
    {"scc-parallel", SccParallel4},
};

/// Walks the recorded events and asserts per-thread stack discipline:
/// every end matches the innermost open begin on its thread, and no span
/// is left open at the end.
void ExpectBalancedSpans(const std::vector<TraceEvent>& events,
                         const char* engine) {
  std::map<int, std::vector<const char*>> stacks;
  for (const TraceEvent& event : events) {
    std::vector<const char*>& stack = stacks[event.tid];
    if (event.phase == TraceEvent::Phase::kBegin) {
      stack.push_back(event.name);
    } else {
      ASSERT_FALSE(stack.empty())
          << engine << ": end of '" << event.name << "' on tid " << event.tid
          << " with no open span";
      EXPECT_STREQ(stack.back(), event.name)
          << engine << ": spans closed out of order on tid " << event.tid;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty())
        << engine << ": " << stack.size() << " span(s) left open on tid "
        << tid << " (innermost: " << stack.back() << ")";
  }
}

class TraceInvariantTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
    MetricsRegistry::Get().Disable();
    MetricsRegistry::Get().Clear();
  }
};

TEST_F(TraceInvariantTest, EverySpanNestsAndClosesExactlyOnce) {
  Workload w = MakeWorkload();
  for (const EngineRun& engine : kEngines) {
    Tracer::Get().Enable();
    Database db = w.edb;
    ASSERT_TRUE(engine.run(w.program, &db).ok()) << engine.name;
    std::vector<TraceEvent> events = Tracer::Get().Events();
    EXPECT_FALSE(events.empty()) << engine.name << " recorded no spans";
    ExpectBalancedSpans(events, engine.name);
    // The engine's root span is the first event and the last to close.
    std::string root = std::string("eval/") + engine.name;
    EXPECT_EQ(std::string(events.front().name), root) << engine.name;
    EXPECT_EQ(std::string(events.back().name), root) << engine.name;
  }
}

TEST_F(TraceInvariantTest, TopDownAndPipelineSpansBalance) {
  Workload w = MakeWorkload();
  Tracer::Get().Enable();

  Atom query = ParseQueryOrDie(w.symbols, "?- t(x, y).");
  ASSERT_TRUE(SolveTopDown(w.program, w.edb, query).ok());
  ASSERT_TRUE(AnswerQuery(w.program, w.edb, query,
                          EvalMethod::kMagicSemiNaive)
                  .ok());
  ASSERT_TRUE(MinimizeProgram(w.program).ok());
  ASSERT_TRUE(PlanQuery(w.program, query).ok());

  ExpectBalancedSpans(Tracer::Get().Events(), "topdown+pipeline");
}

TEST_F(TraceInvariantTest, IncrementalCommitSpansBalance) {
  Workload w = MakeWorkload();
  Tracer::Get().Enable();

  Result<MaterializedView> view =
      MaterializedView::Create(w.program, w.edb, IncrOptions{});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId e = w.symbols->LookupPredicate("e").value();
  Transaction txn = view->Begin();
  ASSERT_TRUE(txn.Insert(e, {Value::Int(1), Value::Int(5)}).ok());
  ASSERT_TRUE(txn.Retract(e, w.edb.relation(e).rows()[0]).ok());
  ASSERT_TRUE(txn.Commit().ok());

  std::vector<TraceEvent> events = Tracer::Get().Events();
  ExpectBalancedSpans(events, "incr");
  bool saw_commit = false;
  for (const TraceEvent& event : events) {
    if (std::strcmp(event.name, "incr/commit") == 0) saw_commit = true;
  }
  EXPECT_TRUE(saw_commit);
}

TEST_F(TraceInvariantTest, DisabledTracerEmitsNothing) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(Tracer::Get().enabled());
  for (const EngineRun& engine : kEngines) {
    Database db = w.edb;
    ASSERT_TRUE(engine.run(w.program, &db).ok()) << engine.name;
  }
  Atom query = ParseQueryOrDie(w.symbols, "?- t(x, y).");
  ASSERT_TRUE(SolveTopDown(w.program, w.edb, query).ok());
  ASSERT_TRUE(MinimizeProgram(w.program).ok());
  EXPECT_TRUE(Tracer::Get().Events().empty());
  EXPECT_TRUE(MetricsRegistry::Get().Snapshot().empty());
}

TEST_F(TraceInvariantTest, MetricsEqualEvalStatsBitForBit) {
  Workload w = MakeWorkload();
  for (const EngineRun& engine : kEngines) {
    MetricsRegistry& m = MetricsRegistry::Get();
    m.Clear();
    m.Enable();
    Database db = w.edb;
    Result<EvalStats> stats = engine.run(w.program, &db);
    ASSERT_TRUE(stats.ok()) << engine.name;
    m.Disable();

    const MetricLabels labels = {{"engine", engine.name}};
    EXPECT_EQ(m.Value("eval.iterations", labels),
              static_cast<std::uint64_t>(stats->iterations))
        << engine.name;
    EXPECT_EQ(m.Value("eval.facts_derived", labels), stats->facts_derived)
        << engine.name;
    EXPECT_EQ(m.Value("eval.rule_applications", labels),
              stats->rule_applications)
        << engine.name;
    EXPECT_EQ(m.Value("eval.substitutions", labels),
              stats->match.substitutions)
        << engine.name;
    EXPECT_EQ(m.Value("eval.index_lookups", labels),
              stats->match.index_lookups)
        << engine.name;
    EXPECT_EQ(m.Value("eval.tuples_scanned", labels),
              stats->match.tuples_scanned)
        << engine.name;
    EXPECT_EQ(m.Value("eval.parallel_rounds", labels),
              stats->parallel_rounds)
        << engine.name;
    EXPECT_EQ(m.Value("eval.parallel_tasks", labels), stats->parallel_tasks)
        << engine.name;
    for (std::size_t i = 0; i < stats->per_rule.size(); ++i) {
      const MetricLabels rule_labels = {{"engine", engine.name},
                                        {"rule", std::to_string(i)}};
      EXPECT_EQ(m.Value("eval.rule.applications", rule_labels),
                stats->per_rule[i].applications)
          << engine.name << " rule " << i;
      EXPECT_EQ(m.Value("eval.rule.facts", rule_labels),
                stats->per_rule[i].facts)
          << engine.name << " rule " << i;
      EXPECT_EQ(m.Value("eval.rule.substitutions", rule_labels),
                stats->per_rule[i].substitutions)
          << engine.name << " rule " << i;
    }
  }
}

TEST_F(TraceInvariantTest, MetricsEqualTopDownStatsBitForBit) {
  Workload w = MakeWorkload();
  MetricsRegistry& m = MetricsRegistry::Get();
  m.Clear();
  m.Enable();
  Atom query = ParseQueryOrDie(w.symbols, "?- t(x, y).");
  TopDownStats stats;
  ASSERT_TRUE(SolveTopDown(w.program, w.edb, query, &stats).ok());
  m.Disable();

  const MetricLabels labels = {{"engine", "topdown"}};
  EXPECT_EQ(m.Value("topdown.subgoals", labels),
            static_cast<std::uint64_t>(stats.subgoals));
  EXPECT_EQ(m.Value("topdown.iterations", labels),
            static_cast<std::uint64_t>(stats.iterations));
  EXPECT_EQ(m.Value("topdown.answers", labels), stats.answers);
  EXPECT_EQ(m.Value("topdown.body_matches", labels), stats.body_matches);
}

TEST_F(TraceInvariantTest, MetricsEqualCommitStatsBitForBit) {
  Workload w = MakeWorkload();
  Result<MaterializedView> view =
      MaterializedView::Create(w.program, w.edb, IncrOptions{});
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  MetricsRegistry& m = MetricsRegistry::Get();
  m.Clear();
  m.Enable();
  PredicateId e = w.symbols->LookupPredicate("e").value();
  Transaction txn = view->Begin();
  ASSERT_TRUE(txn.Insert(e, {Value::Int(2), Value::Int(9)}).ok());
  ASSERT_TRUE(txn.Retract(e, w.edb.relation(e).rows()[1]).ok());
  Result<CommitStats> stats = txn.Commit();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  m.Disable();

  const MetricLabels labels = {{"engine", "incr"}};
  EXPECT_EQ(m.Value("incr.base_inserted", labels), stats->base_inserted);
  EXPECT_EQ(m.Value("incr.base_retracted", labels), stats->base_retracted);
  EXPECT_EQ(m.Value("incr.derived_added", labels), stats->derived_added);
  EXPECT_EQ(m.Value("incr.derived_removed", labels), stats->derived_removed);
  EXPECT_EQ(m.Value("incr.overdeleted", labels), stats->overdeleted);
  EXPECT_EQ(m.Value("incr.rederived", labels), stats->rederived);
  EXPECT_EQ(m.Value("incr.sccs_touched", labels),
            static_cast<std::uint64_t>(stats->sccs_touched));
}

TEST_F(TraceInvariantTest, ParallelTaskSpansMatchTaskCountExactly) {
  Workload w = MakeWorkload();
  Tracer::Get().Enable();
  Database db = w.edb;
  Result<EvalStats> stats = EvaluateSemiNaiveParallel(w.program, &db, 4);
  ASSERT_TRUE(stats.ok());
  std::vector<TraceEvent> events = Tracer::Get().Events();
  ExpectBalancedSpans(events, "parallel x4");
  // Each submitted task opens exactly one parallel/task span on whatever
  // thread ran it (main helps at the barrier, so the tid split varies),
  // so the begin count must equal the engine's own task counter.
  std::uint64_t task_begins = 0;
  for (const TraceEvent& event : events) {
    if (event.phase == TraceEvent::Phase::kBegin &&
        std::strcmp(event.name, "parallel/task") == 0) {
      ++task_begins;
    }
  }
  EXPECT_GT(stats->parallel_tasks, 0u);
  EXPECT_EQ(task_begins, stats->parallel_tasks);
}

}  // namespace
}  // namespace datalog
