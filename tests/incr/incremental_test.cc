// Unit tests for the incremental materialization engine: the counting
// algorithm on nonrecursive strata, Delete/Rederive on recursive ones,
// the recompute fallback under negation, transaction semantics, and the
// work-savings claim (an incremental commit does strictly less
// rule-matching work than evaluating from scratch).

#include <cstdint>
#include <utility>
#include <vector>

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

Tuple T1(std::int64_t a) { return {Value::Int(a)}; }
Tuple T2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

PredicateId Pred(const std::shared_ptr<SymbolTable>& symbols,
                 const std::string& name) {
  auto id = symbols->LookupPredicate(name);
  EXPECT_TRUE(id.ok()) << name;
  return *id;
}

/// From-scratch evaluation of `program` over `edb`: the oracle every
/// incremental state is compared against.
Database Recompute(const Program& program, const Database& edb) {
  Database db = edb;
  Result<EvalStats> stats = EvaluateStratified(program, &db);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return db;
}

TEST(IncrementalTest, CountingMaintainsNonrecursiveJoin) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "q(x, z) :- e(x, y), f(y, z).\n");
  Database edb =
      ParseDatabaseOrDie(symbols, "e(1, 2). e(3, 2). f(2, 4). f(2, 5).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
  PredicateId q = Pred(symbols, "q");
  EXPECT_TRUE(view->db().Contains(q, T2(1, 4)));

  Transaction txn = view->Begin();
  ASSERT_TRUE(txn.Insert(Pred(symbols, "e"), T2(7, 2)).ok());
  ASSERT_TRUE(txn.Retract(Pred(symbols, "f"), T2(2, 5)).ok());
  Result<CommitStats> stats = txn.Commit();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->base_inserted, 1u);
  EXPECT_EQ(stats->base_retracted, 1u);
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
  EXPECT_TRUE(view->db().Contains(q, T2(7, 4)));
  EXPECT_FALSE(view->db().Contains(q, T2(1, 5)));
}

TEST(IncrementalTest, CountingKeepsFactsWithRemainingDerivations) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, "p(x) :- e(x, y).\n");
  Database edb = ParseDatabaseOrDie(symbols, "e(1, 2). e(1, 3).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId p = Pred(symbols, "p");
  PredicateId e = Pred(symbols, "e");

  // p(1) has two derivations; dropping one support must keep it.
  ASSERT_TRUE(view->Apply({}, {{e, T2(1, 2)}}).ok());
  EXPECT_TRUE(view->db().Contains(p, T1(1)));
  // Dropping the last support removes it.
  Result<CommitStats> stats = view->Apply({}, {{e, T2(1, 3)}});
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(view->db().Contains(p, T1(1)));
  EXPECT_EQ(stats->derived_removed, 2u);  // e(1,3) and p(1)
}

TEST(IncrementalTest, DRedRederivesFactsWithAlternateDerivations) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n");
  Database edb = ParseDatabaseOrDie(
      symbols, "edge(1, 2). edge(2, 3). edge(1, 3). edge(3, 4).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId path = Pred(symbols, "path");
  PredicateId edge = Pred(symbols, "edge");

  // Deleting edge(2,3) overdeletes path(1,3)/path(1,4)/path(2,*) -- but
  // path(1,3) and path(1,4) survive via the direct edge(1,3).
  Result<CommitStats> stats = view->Apply({}, {{edge, T2(2, 3)}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->overdeleted, 0u);
  EXPECT_GT(stats->rederived, 0u);
  EXPECT_TRUE(view->db().Contains(path, T2(1, 3)));
  EXPECT_TRUE(view->db().Contains(path, T2(1, 4)));
  EXPECT_FALSE(view->db().Contains(path, T2(2, 3)));
  EXPECT_FALSE(view->db().Contains(path, T2(2, 4)));
  EXPECT_EQ(view->db(), Recompute(program, view->base()));

  // Inserting the edge back restores the original fixpoint.
  ASSERT_TRUE(view->Apply({{edge, T2(2, 3)}}, {}).ok());
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
}

TEST(IncrementalTest, RetractedBaseFactStaysWhileDerivable) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "edge(1, 2). edge(2, 3).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId path = Pred(symbols, "path");

  // Assert path(1,3) as a base fact even though it is also derived ...
  ASSERT_TRUE(view->Apply({{path, T2(1, 3)}}, {}).ok());
  EXPECT_TRUE(view->base().Contains(path, T2(1, 3)));
  // ... then retract it: the derivation keeps it in the view.
  ASSERT_TRUE(view->Apply({}, {{path, T2(1, 3)}}).ok());
  EXPECT_FALSE(view->base().Contains(path, T2(1, 3)));
  EXPECT_TRUE(view->db().Contains(path, T2(1, 3)));
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
}

TEST(IncrementalTest, NegationStratumFallsBackToRecompute) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "reach(x) :- source(x).\n"
      "reach(y) :- reach(x), edge(x, y).\n"
      "unreached(x) :- node(x), not reach(x).\n");
  Database edb = ParseDatabaseOrDie(
      symbols,
      "source(1). edge(1, 2). node(1). node(2). node(3). node(4).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId unreached = Pred(symbols, "unreached");
  PredicateId edge = Pred(symbols, "edge");
  EXPECT_TRUE(view->db().Contains(unreached, T1(3)));

  // An EDB insertion must *remove* facts of the negation stratum: edges
  // make nodes reachable, shrinking `unreached`.
  Result<CommitStats> stats = view->Apply({{edge, T2(2, 3)}}, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->sccs_recomputed, 1);
  EXPECT_FALSE(view->db().Contains(unreached, T1(3)));
  EXPECT_TRUE(view->db().Contains(unreached, T1(4)));
  EXPECT_EQ(view->db(), Recompute(program, view->base()));

  // And a retraction grows it again.
  ASSERT_TRUE(view->Apply({}, {{edge, T2(1, 2)}}).ok());
  EXPECT_TRUE(view->db().Contains(unreached, T1(2)));
  EXPECT_TRUE(view->db().Contains(unreached, T1(3)));
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
}

TEST(IncrementalTest, TransactionNetsConflictingOps) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, "p(x) :- e(x, x).\n");
  Database edb = ParseDatabaseOrDie(symbols, "e(1, 1).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId e = Pred(symbols, "e");

  // Insert-then-retract of the same new fact nets to nothing.
  Transaction txn = view->Begin();
  ASSERT_TRUE(txn.Insert(e, T2(2, 2)).ok());
  ASSERT_TRUE(txn.Retract(e, T2(2, 2)).ok());
  EXPECT_EQ(txn.NumPendingOps(), 2u);
  Result<CommitStats> stats = txn.Commit();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->base_inserted, 0u);
  EXPECT_EQ(stats->base_retracted, 0u);
  EXPECT_FALSE(txn.active());

  // Retract-then-insert of an existing fact nets to keeping it.
  Transaction txn2 = view->Begin();
  ASSERT_TRUE(txn2.Retract(e, T2(1, 1)).ok());
  ASSERT_TRUE(txn2.Insert(e, T2(1, 1)).ok());
  stats = txn2.Commit();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->base_retracted, 0u);
  EXPECT_TRUE(view->base().Contains(e, T2(1, 1)));
}

TEST(IncrementalTest, TransactionAbortAndMisuse) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, "p(x) :- e(x, x).\n");
  Database edb = ParseDatabaseOrDie(symbols, "e(1, 1).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId e = Pred(symbols, "e");
  Database before = view->db();

  Transaction txn = view->Begin();
  ASSERT_TRUE(txn.Insert(e, T2(5, 5)).ok());
  // Arity mismatch is rejected up front; the transaction stays usable.
  EXPECT_FALSE(txn.Insert(e, T1(5)).ok());
  EXPECT_TRUE(txn.active());
  txn.Abort();
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(view->db(), before);

  // A finished transaction rejects further use.
  EXPECT_FALSE(txn.Insert(e, T2(6, 6)).ok());
  EXPECT_FALSE(txn.Commit().ok());

  // No-op changes (insert present, retract absent) commit cleanly.
  Transaction txn2 = view->Begin();
  ASSERT_TRUE(txn2.Insert(e, T2(1, 1)).ok());
  ASSERT_TRUE(txn2.Retract(e, T2(9, 9)).ok());
  Result<CommitStats> stats = txn2.Commit();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->base_inserted, 0u);
  EXPECT_EQ(stats->base_retracted, 0u);
  EXPECT_EQ(view->db(), before);
}

TEST(IncrementalTest, ProvenancePremiseRetractedFactDoesNotSurvive) {
  // The provenance-under-deletion regression: retracting a premise of a
  // fact's only derivation must delete the fact, and the explainer must
  // agree that it is no longer derivable.
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "edge(1, 2). edge(2, 3).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId path = Pred(symbols, "path");
  PredicateId edge = Pred(symbols, "edge");

  Result<Derivation> derivation =
      ExplainFact(program, view->base(), path, T2(1, 3));
  ASSERT_TRUE(derivation.ok()) << derivation.status().ToString();
  // Find a leaf premise (an input edge) of the derivation tree.
  const Derivation* leaf = &*derivation;
  while (!leaf->IsInputFact()) leaf = leaf->premises.front().get();
  ASSERT_EQ(leaf->predicate, edge);

  ASSERT_TRUE(view->Apply({}, {{leaf->predicate, leaf->fact}}).ok());
  EXPECT_FALSE(view->db().Contains(path, T2(1, 3)));
  EXPECT_FALSE(ExplainFact(program, view->base(), path, T2(1, 3)).ok());
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
}

TEST(IncrementalTest, SmallDeltaDoesLessWorkThanRecompute) {
  // The headline claim: after a small delta (1 edge in 300), the commit's
  // total rule-matching work is far below a from-scratch evaluation's.
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n");
  Database edb(symbols);
  PredicateId edge = Pred(symbols, "edge");
  // A long chain with a few shortcuts: deep recursion, big fixpoint.
  for (std::int64_t i = 0; i < 300; ++i) edb.AddFact(edge, T2(i, i + 1));
  for (std::int64_t i = 0; i < 300; i += 50) edb.AddFact(edge, T2(i, 0));
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const std::uint64_t full_work = view->initial_stats().match.substitutions;
  ASSERT_GT(full_work, 0u);

  Result<CommitStats> stats = view->Apply({{edge, T2(301, 302)}}, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
  EXPECT_GT(stats->TotalSubstitutions(), 0u);
  // "Measurably less": at least 10x below the from-scratch join count.
  EXPECT_LT(stats->TotalSubstitutions(), full_work / 10);
}

TEST(IncrementalTest, ParallelViewMatchesSequential) {
  auto symbols1 = MakeSymbols();
  auto symbols4 = MakeSymbols();
  const char* kProgram =
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n";
  const char* kFacts =
      "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(2, 5). "
      "edge(5, 1).";
  Program p1 = ParseProgramOrDie(symbols1, kProgram);
  Program p4 = ParseProgramOrDie(symbols4, kProgram);
  auto v1 = MaterializedView::Create(p1, ParseDatabaseOrDie(symbols1, kFacts),
                                     IncrOptions{.num_threads = 1});
  auto v4 = MaterializedView::Create(p4, ParseDatabaseOrDie(symbols4, kFacts),
                                     IncrOptions{.num_threads = 4});
  ASSERT_TRUE(v1.ok() && v4.ok());
  PredicateId e1 = Pred(symbols1, "edge");
  PredicateId e4 = Pred(symbols4, "edge");

  const std::vector<std::pair<bool, Tuple>> script = {
      {false, T2(2, 3)}, {true, T2(7, 8)},  {true, T2(8, 2)},
      {false, T2(5, 1)}, {false, T2(1, 2)}, {true, T2(1, 2)},
  };
  for (const auto& [insert, tuple] : script) {
    if (insert) {
      ASSERT_TRUE(v1->Apply({{e1, tuple}}, {}).ok());
      ASSERT_TRUE(v4->Apply({{e4, tuple}}, {}).ok());
    } else {
      ASSERT_TRUE(v1->Apply({}, {{e1, tuple}}).ok());
      ASSERT_TRUE(v4->Apply({}, {{e4, tuple}}).ok());
    }
    EXPECT_EQ(v1->db().ToString(), v4->db().ToString());
  }
  EXPECT_EQ(v1->db(), Recompute(p1, v1->base()));
}

TEST(IncrementalTest, ProgramFactsArePinned) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "e(1, 2).\n"
                                      "p(x, y) :- e(x, y).\n");
  Database edb = ParseDatabaseOrDie(symbols, "e(2, 3).");
  auto view = MaterializedView::Create(program, edb);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  PredicateId e = Pred(symbols, "e");
  PredicateId p = Pred(symbols, "p");

  // Retracting a program fact is a no-op: it is not a base fact, and the
  // program keeps deriving it.
  ASSERT_TRUE(view->Apply({}, {{e, T2(1, 2)}}).ok());
  EXPECT_TRUE(view->db().Contains(e, T2(1, 2)));
  EXPECT_TRUE(view->db().Contains(p, T2(1, 2)));
  EXPECT_EQ(view->db(), Recompute(program, view->base()));
}

TEST(IncrementalTest, CreateRejectsMismatchedSymbolTables) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, "p(x) :- e(x).\n");
  Database other(MakeSymbols());
  EXPECT_FALSE(MaterializedView::Create(program, other).ok());
}

}  // namespace
}  // namespace datalog
