#include "incr/script.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

Result<std::vector<ScriptOp>> Parse(std::string_view text,
                                    ScriptDialect dialect) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  return ParseUpdateScript(text, &parser, dialect);
}

TEST(ScriptTest, ParsesAllIncrOpKinds) {
  Result<std::vector<ScriptOp>> ops = Parse(
      "+edge(1, 2).\n"
      "-edge(3, 4).\n"
      "commit\n"
      "?path(1, x)\n",
      ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 4u);
  EXPECT_EQ((*ops)[0].kind, ScriptOp::Kind::kInsert);
  EXPECT_EQ((*ops)[0].facts.size(), 1u);
  EXPECT_EQ((*ops)[1].kind, ScriptOp::Kind::kRetract);
  EXPECT_EQ((*ops)[2].kind, ScriptOp::Kind::kCommit);
  EXPECT_EQ((*ops)[3].kind, ScriptOp::Kind::kQuery);
}

TEST(ScriptTest, RecordsOneBasedLineNumbers) {
  Result<std::vector<ScriptOp>> ops = Parse(
      "# header comment\n"
      "+edge(1, 2).\n"
      "\n"
      "commit\n",
      ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 2u);
  EXPECT_EQ((*ops)[0].line, 2);
  EXPECT_EQ((*ops)[1].line, 4);
}

TEST(ScriptTest, MultipleFactsMayShareALine) {
  Result<std::vector<ScriptOp>> ops =
      Parse("+edge(1, 2). edge(2, 3). edge(3, 4).\n", ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 1u);
  EXPECT_EQ((*ops)[0].kind, ScriptOp::Kind::kInsert);
  EXPECT_EQ((*ops)[0].facts.size(), 3u);
}

TEST(ScriptTest, MissingPeriodIsAutoAppended) {
  Result<std::vector<ScriptOp>> ops =
      Parse("+edge(1, 2)\n", ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 1u);
  EXPECT_EQ((*ops)[0].facts.size(), 1u);
}

TEST(ScriptTest, MalformedFactNamesTheLine) {
  Result<std::vector<ScriptOp>> ops = Parse(
      "+edge(1, 2).\n"
      "+edge(1, \n"
      "commit\n",
      ScriptDialect::kIncr);
  ASSERT_FALSE(ops.ok());
  EXPECT_NE(ops.status().message().find("line 2"), std::string::npos)
      << ops.status().ToString();
}

TEST(ScriptTest, UnknownDirectiveNamesTheLine) {
  Result<std::vector<ScriptOp>> ops = Parse(
      "+edge(1, 2).\n"
      "commit\n"
      "flush\n",
      ScriptDialect::kIncr);
  ASSERT_FALSE(ops.ok());
  EXPECT_NE(ops.status().message().find("line 3"), std::string::npos)
      << ops.status().ToString();
}

TEST(ScriptTest, NonGroundFactIsRejectedWithItsLine) {
  Result<std::vector<ScriptOp>> ops =
      Parse("+edge(1, x).\n", ScriptDialect::kIncr);
  ASSERT_FALSE(ops.ok());
  EXPECT_NE(ops.status().message().find("line 1"), std::string::npos)
      << ops.status().ToString();
}

TEST(ScriptTest, ClientVerbsParseOnlyInClientDialect) {
  const std::string script =
      "ping\n"
      "stats\n"
      "base\n"
      "shutdown\n";
  Result<std::vector<ScriptOp>> client_ops =
      Parse(script, ScriptDialect::kClient);
  ASSERT_TRUE(client_ops.ok()) << client_ops.status().ToString();
  ASSERT_EQ(client_ops->size(), 4u);
  EXPECT_EQ((*client_ops)[0].kind, ScriptOp::Kind::kPing);
  EXPECT_EQ((*client_ops)[1].kind, ScriptOp::Kind::kStats);
  EXPECT_EQ((*client_ops)[2].kind, ScriptOp::Kind::kDumpBase);
  EXPECT_EQ((*client_ops)[3].kind, ScriptOp::Kind::kShutdown);

  Result<std::vector<ScriptOp>> incr_ops = Parse(script, ScriptDialect::kIncr);
  ASSERT_FALSE(incr_ops.ok());
  EXPECT_NE(incr_ops.status().message().find("line 1"), std::string::npos)
      << incr_ops.status().ToString();
}

TEST(ScriptTest, CommentsAndBlankLinesAreIgnored) {
  Result<std::vector<ScriptOp>> ops = Parse(
      "# full-line comment\n"
      "\n"
      "   \n"
      "+edge(1, 2).  % trailing comment\n"
      "?path(x, y)   % another\n",
      ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 2u);
  EXPECT_EQ((*ops)[0].kind, ScriptOp::Kind::kInsert);
  EXPECT_EQ((*ops)[1].kind, ScriptOp::Kind::kQuery);
}

TEST(ScriptTest, PercentInsideQuotedConstantIsNotAComment) {
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Result<std::vector<ScriptOp>> ops = ParseUpdateScript(
      "+label(1, 'a%b').\n", &parser, ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 1u);
  ASSERT_EQ((*ops)[0].facts.size(), 1u);
}

TEST(ScriptTest, EmptyScriptYieldsNoOps) {
  Result<std::vector<ScriptOp>> ops =
      Parse("# nothing here\n\n", ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  EXPECT_TRUE(ops->empty());
}

TEST(ScriptTest, QueryBuffersThenCommitSemanticsAreCallerSide) {
  // The parser itself does not reorder or merge ops: a query between
  // buffered facts stays in place so the runner can commit-before-query.
  Result<std::vector<ScriptOp>> ops = Parse(
      "+edge(1, 2).\n"
      "?path(1, x)\n"
      "-edge(1, 2).\n",
      ScriptDialect::kIncr);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 3u);
  EXPECT_EQ((*ops)[0].kind, ScriptOp::Kind::kInsert);
  EXPECT_EQ((*ops)[1].kind, ScriptOp::Kind::kQuery);
  EXPECT_EQ((*ops)[2].kind, ScriptOp::Kind::kRetract);
}

}  // namespace
}  // namespace datalog
