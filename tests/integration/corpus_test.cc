// Data-driven minimization regressions: every tests/corpus/<name>.in.dl
// is minimized (Fig. 2, textual order) and compared against
// <name>.out.dl. The corpus directory path is injected by CMake.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

#ifndef DATALOG_CORPUS_DIR
#define DATALOG_CORPUS_DIR "tests/corpus"
#endif

std::vector<std::string> CorpusCases() {
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(DATALOG_CORPUS_DIR)) {
    std::string filename = entry.path().filename().string();
    const std::string suffix = ".in.dl";
    if (filename.size() > suffix.size() &&
        filename.substr(filename.size() - suffix.size()) == suffix) {
      names.push_back(filename.substr(0, filename.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusTest, MinimizesToGolden) {
  const std::string base = std::string(DATALOG_CORPUS_DIR) + "/" + GetParam();
  auto symbols = testing::MakeSymbols();
  Program input =
      testing::ParseProgramOrDie(symbols, ReadFile(base + ".in.dl"));
  Program expected =
      testing::ParseProgramOrDie(symbols, ReadFile(base + ".out.dl"));

  Result<Program> minimized = MinimizeProgram(input);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  EXPECT_EQ(minimized.value(), expected)
      << "got:\n"
      << ToString(minimized.value()) << "want:\n"
      << ToString(expected);

  // Cross-check the golden file itself: it must be uniformly equivalent
  // to the input and already minimal.
  Result<bool> eq = UniformlyEquivalent(input, expected);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value()) << "golden file is not uniformly equivalent";
  Result<Program> again = MinimizeProgram(expected);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), expected) << "golden file is not minimal";
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusTest,
                         ::testing::ValuesIn(CorpusCases()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace datalog
