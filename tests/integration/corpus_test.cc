// Data-driven minimization regressions: every tests/corpus/<name>.in.dl
// is minimized (Fig. 2, textual order) and compared against
// <name>.out.dl. When <name>.opt.dl also exists, the input is
// additionally run through the full optimize pipeline (Fig. 2 followed by
// the Section XI tgd-based equivalence optimizer) and compared against
// that golden -- the equivalence pass can remove atoms that are NOT
// uniformly redundant, so its output needs a separate file. The corpus
// directory path is injected by CMake.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ast/pretty_print.h"
#include "core/equivalence_optimizer.h"
#include "core/minimize.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

#ifndef DATALOG_CORPUS_DIR
#define DATALOG_CORPUS_DIR "tests/corpus"
#endif

std::vector<std::string> CorpusCases() {
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(DATALOG_CORPUS_DIR)) {
    std::string filename = entry.path().filename().string();
    const std::string suffix = ".in.dl";
    if (filename.size() > suffix.size() &&
        filename.substr(filename.size() - suffix.size()) == suffix) {
      names.push_back(filename.substr(0, filename.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusTest, MinimizesToGolden) {
  const std::string base = std::string(DATALOG_CORPUS_DIR) + "/" + GetParam();
  auto symbols = testing::MakeSymbols();
  Program input =
      testing::ParseProgramOrDie(symbols, ReadFile(base + ".in.dl"));
  Program expected =
      testing::ParseProgramOrDie(symbols, ReadFile(base + ".out.dl"));

  Result<Program> minimized = MinimizeProgram(input);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  EXPECT_EQ(minimized.value(), expected)
      << "got:\n"
      << ToString(minimized.value()) << "want:\n"
      << ToString(expected);

  // Cross-check the golden file itself: it must be uniformly equivalent
  // to the input and already minimal.
  Result<bool> eq = UniformlyEquivalent(input, expected);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value()) << "golden file is not uniformly equivalent";
  Result<Program> again = MinimizeProgram(expected);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), expected) << "golden file is not minimal";
}

TEST_P(CorpusTest, OptimizesToGolden) {
  const std::string base = std::string(DATALOG_CORPUS_DIR) + "/" + GetParam();
  if (!std::filesystem::exists(base + ".opt.dl")) {
    GTEST_SKIP() << "no .opt.dl golden for " << GetParam();
  }
  auto symbols = testing::MakeSymbols();
  Program input =
      testing::ParseProgramOrDie(symbols, ReadFile(base + ".in.dl"));
  Program expected =
      testing::ParseProgramOrDie(symbols, ReadFile(base + ".opt.dl"));

  Result<Program> minimized = MinimizeProgram(input);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  Result<EquivalenceOptimizeResult> optimized =
      OptimizeUnderEquivalence(*minimized);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(optimized->program, expected)
      << "got:\n"
      << ToString(optimized->program) << "want:\n"
      << ToString(expected);

  // Cross-check the golden: a second optimize pass must be a fixpoint
  // (nothing left for either the minimizer or the tgd pass to remove).
  Result<Program> re_minimized = MinimizeProgram(expected);
  ASSERT_TRUE(re_minimized.ok());
  EXPECT_EQ(*re_minimized, expected) << "opt golden is not minimal";
  Result<EquivalenceOptimizeResult> again =
      OptimizeUnderEquivalence(*re_minimized);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->program, expected)
      << "opt golden is not an optimizer fixpoint";
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusTest,
                         ::testing::ValuesIn(CorpusCases()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace datalog
