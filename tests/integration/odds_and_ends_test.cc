// Cross-module corner cases that individual unit files don't reach:
// facts inside unfolding, 0-ary predicates through magic sets, constants
// in rule heads through top-down, repeated tgd atoms.

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;
using testing::ParseTgdsOrDie;

TEST(OddsAndEnds, NonRecursiveEquivalenceWithFacts) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "b(1).\n"
                                 "c(x) :- b(x).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "b(1).\n"
                                 "c(1).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());

  Program p3 = ParseProgramOrDie(symbols,
                                 "b(1).\n"
                                 "c(2).\n");
  Result<bool> neq = NonRecursiveProgramsEquivalent(p1, p3);
  ASSERT_TRUE(neq.ok());
  EXPECT_FALSE(neq.value());
}

TEST(OddsAndEnds, UnfoldThroughFactPropagatesConstants) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "b(7).\n"
                                "c(x) :- b(x), e(x, y).\n");
  std::vector<Rule> flat = ExpandRules(p, {.max_depth = 2});
  // Expect: b(7). and c(7) :- e(7, y).
  bool found = false;
  for (const Rule& rule : flat) {
    if (rule.head().predicate() == symbols->LookupPredicate("c").value()) {
      EXPECT_EQ(rule.head().args()[0], Term::Int(7));
      ASSERT_EQ(rule.body().size(), 1u);
      EXPECT_EQ(rule.body()[0].atom.args()[0], Term::Int(7));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(OddsAndEnds, ZeroAryQueryThroughMagicSets) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "alarm :- sensor(x), threshold(x).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "sensor(3). threshold(3). sensor(9).");
  Atom query = ParseQueryOrDie(symbols, "?- alarm.");
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->size(), 1u);  // the empty tuple: alarm holds

  Database no_match = ParseDatabaseOrDie(symbols, "sensor(4). threshold(5).");
  Result<std::vector<Tuple>> none =
      AnswerQuery(p, no_match, query, EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(OddsAndEnds, ZeroAryQueryThroughTopDown) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "alarm :- sensor(x), threshold(x).\n");
  Database edb = ParseDatabaseOrDie(symbols, "sensor(3). threshold(3).");
  Atom query = ParseQueryOrDie(symbols, "?- alarm.");
  Result<std::vector<Tuple>> top =
      AnswerQuery(p, edb, query, EvalMethod::kTabledTopDown);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 1u);
}

TEST(OddsAndEnds, HeadConstantsThroughTopDown) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "status(x, 1) :- up_host(x).\n"
                                "status(x, 0) :- down_host(x).\n");
  Database edb = ParseDatabaseOrDie(symbols, "up_host(10). down_host(11).");
  Result<std::vector<Tuple>> up = SolveTopDown(
      p, edb, ParseQueryOrDie(symbols, "?- status(x, 1)."));
  ASSERT_TRUE(up.ok());
  ASSERT_EQ(up->size(), 1u);
  EXPECT_EQ((*up)[0][0], Value::Int(10));
  // A query whose constant matches no head constant.
  Result<std::vector<Tuple>> none = SolveTopDown(
      p, edb, ParseQueryOrDie(symbols, "?- status(x, 7)."));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(OddsAndEnds, RepeatedAtomInTgdLhs) {
  // Degenerate but legal: a repeated LHS atom adds nothing.
  auto symbols = MakeSymbols();
  std::vector<Tgd> tgds =
      ParseTgdsOrDie(symbols, "g(x, y), g(x, y) -> a(x, w).");
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2).");
  EXPECT_FALSE(SatisfiesAll(db, tgds));
  NullPool pool;
  ApplyTgdRound(tgds[0], &db, &pool);
  EXPECT_TRUE(SatisfiesAll(db, tgds));
  EXPECT_EQ(pool.allocated(), 1);
}

TEST(OddsAndEnds, GroundTgd) {
  auto symbols = MakeSymbols();
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "start(0) -> ready.");
  Database db = ParseDatabaseOrDie(symbols, "start(0).");
  EXPECT_FALSE(SatisfiesAll(db, tgds));
  NullPool pool;
  ApplyTgdRound(tgds[0], &db, &pool);
  PredicateId ready = symbols->LookupPredicate("ready").value();
  EXPECT_TRUE(db.Contains(ready, {}));
  EXPECT_EQ(pool.allocated(), 0);
}

TEST(OddsAndEnds, MinimizeRuleWithZeroAryGuard) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "out(x) :- in(x), enabled, enabled.\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(report.atoms_removed, 1u);  // one duplicate 'enabled'
  EXPECT_EQ(minimized->rules()[0].body().size(), 2u);
}

}  // namespace
}  // namespace datalog
