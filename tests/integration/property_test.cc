// Parameterized property sweeps over generated programs and databases.

#include <random>

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

/// Builds a small mixed EDB for the planted-program vocabulary.
Database MakeEdb(const std::shared_ptr<SymbolTable>& symbols,
                 std::uint64_t seed) {
  Database db(symbols);
  PredicateId e0 = symbols->InternPredicate("e0", 2).value();
  PredicateId e1 = symbols->InternPredicate("e1", 2).value();
  AddGraphFacts({GraphShape::kRandom, 7, 12, seed}, e0, &db);
  AddGraphFacts({GraphShape::kChain, 7}, e1, &db);
  return db;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, MinimizationPreservesSemanticsOnEdbs) {
  // Uniform equivalence implies equivalence (Proposition 1): the
  // minimized program must agree on plain EDBs.
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.planted_atoms = 2;
  options.planted_rules = 1;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Result<Program> minimized = MinimizeProgram(planted->program);
  ASSERT_TRUE(minimized.ok());

  Database d1 = MakeEdb(symbols, GetParam());
  Database d2(symbols);
  d2.UnionWith(d1);
  ASSERT_TRUE(EvaluateSemiNaive(planted->program, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(minimized.value(), &d2).ok());
  EXPECT_EQ(d1, d2);
}

TEST_P(SeedSweep, MinimizationPreservesSemanticsOnMixedInputs) {
  // Uniform equivalence is stronger: agreement must also hold when the
  // input assigns initial relations to intentional predicates.
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam() + 1000;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Result<Program> minimized = MinimizeProgram(planted->program);
  ASSERT_TRUE(minimized.ok());

  Database d1 = MakeEdb(symbols, GetParam());
  PredicateId i0 = symbols->InternPredicate("i0", 2).value();
  PredicateId i1 = symbols->InternPredicate("i1", 2).value();
  d1.AddFact(i0, {Value::Int(50), Value::Int(51)});
  d1.AddFact(i1, {Value::Int(51), Value::Int(52)});
  Database d2(symbols);
  d2.UnionWith(d1);
  ASSERT_TRUE(EvaluateSemiNaive(planted->program, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(minimized.value(), &d2).ok());
  EXPECT_EQ(d1, d2);
}

TEST_P(SeedSweep, MinimizedProgramHasNoRemainingRedundancy) {
  // Post-condition of Fig. 2 (Theorem 2): no atom and no rule of the
  // output can be removed under uniform equivalence.
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.chain_rules = 2;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Result<Program> minimized = MinimizeProgram(planted->program);
  ASSERT_TRUE(minimized.ok());
  const Program& m = minimized.value();

  for (std::size_t i = 0; i < m.NumRules(); ++i) {
    // No redundant rule.
    Program without = m.WithoutRule(i);
    Result<bool> rule_redundant =
        UniformlyContainsRule(without, m.rules()[i]);
    ASSERT_TRUE(rule_redundant.ok());
    EXPECT_FALSE(rule_redundant.value()) << "rule " << i << " redundant in\n"
                                         << ToString(m);
    // No redundant atom.
    for (std::size_t j = 0; j < m.rules()[i].body().size(); ++j) {
      Rule candidate = m.rules()[i].WithoutBodyLiteral(j);
      if (!candidate.IsSafe()) continue;
      Result<bool> atom_redundant = UniformlyContainsRule(m, candidate);
      ASSERT_TRUE(atom_redundant.ok());
      EXPECT_FALSE(atom_redundant.value())
          << "atom " << j << " of rule " << i << " redundant in\n"
          << ToString(m);
    }
  }
}

TEST_P(SeedSweep, EvaluationMethodsAgree) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.planted_atoms = 1;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Database base = MakeEdb(symbols, GetParam());

  Database naive_db(symbols), semi_db(symbols);
  naive_db.UnionWith(base);
  semi_db.UnionWith(base);
  ASSERT_TRUE(EvaluateNaive(planted->program, &naive_db).ok());
  ASSERT_TRUE(EvaluateSemiNaive(planted->program, &semi_db).ok());
  EXPECT_EQ(naive_db, semi_db);
}

TEST_P(SeedSweep, UniformContainmentIsTransitiveOnObservedTriples) {
  // Sanity of the decision procedure: P ⊆ᵘ P, and minimized ≡ᵘ planted
  // implies both directions.
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Result<Program> minimized = MinimizeProgram(planted->program);
  ASSERT_TRUE(minimized.ok());
  EXPECT_TRUE(UniformlyContains(planted->program, planted->program).value());
  EXPECT_TRUE(UniformlyContains(planted->program, minimized.value()).value());
  EXPECT_TRUE(UniformlyContains(minimized.value(), planted->program).value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

class CqAgreementSweep : public ::testing::TestWithParam<int> {};

TEST_P(CqAgreementSweep, ChaseAndHomomorphismAgreeOnNonRecursiveRules) {
  // Generate a random non-recursive rule and compare the two minimizers.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  auto symbols = MakeSymbols();
  PredicateId a = symbols->InternPredicate("a", 2).value();
  PredicateId b = symbols->InternPredicate("b", 2).value();
  PredicateId head = symbols->InternPredicate("p", 2).value();

  std::uniform_int_distribution<int> var_dist(0, 4);
  std::uniform_int_distribution<int> pred_dist(0, 1);
  std::uniform_int_distribution<int> len_dist(2, 5);
  auto var = [&](int i) {
    return Term::Variable(symbols->InternVariable("v" + std::to_string(i)));
  };

  int len = len_dist(rng);
  std::vector<Atom> body;
  for (int i = 0; i < len; ++i) {
    body.push_back(Atom(pred_dist(rng) == 0 ? a : b,
                        {var(var_dist(rng)), var(var_dist(rng))}));
  }
  // Head over two variables that occur in the body (fall back to the
  // first atom's variables).
  Term h1 = body[0].args()[0];
  Term h2 = body[0].args()[1];
  Rule rule(Atom(head, {h1, h2}), {});
  for (Atom& atom : body) {
    rule.mutable_body().push_back(Literal{atom, false});
  }
  ASSERT_TRUE(rule.IsSafe());

  Result<Rule> cq = MinimizeCq(rule, symbols);
  Result<Rule> fig1 = MinimizeRule(rule, symbols);
  ASSERT_TRUE(cq.ok());
  ASSERT_TRUE(fig1.ok());
  EXPECT_EQ(cq->body().size(), fig1->body().size())
      << ToString(rule, *symbols) << "\ncq:   " << ToString(cq.value(), *symbols)
      << "\nfig1: " << ToString(fig1.value(), *symbols);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqAgreementSweep, ::testing::Range(0, 25));

}  // namespace
}  // namespace datalog
