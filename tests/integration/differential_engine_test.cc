// Differential engine-agreement fuzzing, in the spirit of "Finding
// Cross-rule Optimization Bugs in Datalog Engines" (Zhang, Wang, Rigger):
// generate randomly structured positive programs and databases from fixed
// seeds, run every engine configuration -- naive, semi-naive, SCC-ordered
// semi-naive, parallel at 1/2/4 threads, and the magic-sets rewrite -- and
// assert they all tell exactly one story. Any divergence pinpoints the
// engine and the seed that reproduces it.

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/cyclic_gen.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

/// RAII reset for the full ablation-knob matrix so a failing assertion
/// cannot leak a disabled knob into other tests.
struct KnobMatrixGuard {
  ~KnobMatrixGuard() {
    SetGreedyJoinOrdering(true);
    SetIndexLookups(true);
    SetCompiledRulePlans(true);
    SetColumnarStorage(true);
    SetMultiwayJoins(true);
    SetBytecodeExecution(true);
  }
};

struct GeneratedCase {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  Database edb;
  std::size_t num_intentional;

  explicit GeneratedCase(std::shared_ptr<SymbolTable> s)
      : symbols(std::move(s)), edb(symbols) {}
};

/// Derives a program/database pair from the seed alone, varying every
/// generator knob so the ~50 cases cover different rule counts, chain
/// lengths, recursion densities, planted redundancies, and graph shapes.
GeneratedCase MakeCase(std::uint64_t seed) {
  GeneratedCase c(MakeSymbols());
  PlantedProgramOptions options;
  options.seed = seed * 7919 + 1;
  options.num_extensional = 1 + seed % 3;
  options.num_intentional = 1 + (seed / 3) % 4;
  options.chain_rules = 2 + seed % 3;
  options.chain_length = 2 + (seed / 2) % 3;
  options.recursion_percent = 20 + static_cast<int>(seed % 5) * 15;
  options.planted_atoms = seed % 3;
  options.planted_rules = seed % 2;
  Result<PlantedProgram> planted = MakePlantedProgram(c.symbols, options);
  EXPECT_TRUE(planted.ok()) << planted.status().ToString();
  c.program = std::move(planted->program);
  c.num_intentional = options.num_intentional;

  const GraphShape shapes[] = {GraphShape::kChain, GraphShape::kCycle,
                               GraphShape::kBinaryTree, GraphShape::kRandom};
  for (std::size_t i = 0; i < options.num_extensional; ++i) {
    PredicateId pred =
        c.symbols->LookupPredicate("e" + std::to_string(i)).value();
    GraphOptions graph;
    graph.shape = shapes[(seed + i) % 4];
    graph.num_nodes = 5 + (seed + 2 * i) % 4;
    graph.num_edges = 8 + (seed + 3 * i) % 7;
    graph.seed = seed * 31 + i;
    AddGraphFacts(graph, pred, &c.edb);
  }
  return c;
}

class DifferentialEngineTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialEngineTest, AllEngineConfigurationsAgree) {
  GeneratedCase c = MakeCase(GetParam());

  // Reference: the naive fixpoint, the most direct reading of the
  // semantics (Section III).
  Database reference = c.edb;
  Result<EvalStats> naive = EvaluateNaive(c.program, &reference);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  struct EngineRun {
    const char* name;
    Result<EvalStats> (*run)(const Program&, Database*);
  };
  auto parallel1 = [](const Program& p, Database* db) {
    return EvaluateSemiNaiveParallel(p, db, 1);
  };
  auto parallel2 = [](const Program& p, Database* db) {
    return EvaluateSemiNaiveParallel(p, db, 2);
  };
  auto parallel4 = [](const Program& p, Database* db) {
    return EvaluateSemiNaiveParallel(p, db, 4);
  };
  auto scc_parallel4 = [](const Program& p, Database* db) {
    return EvaluateSemiNaiveSccParallel(p, db, 4);
  };
  const EngineRun engines[] = {
      {"semi-naive", EvaluateSemiNaive},
      {"scc semi-naive", EvaluateSemiNaiveScc},
      // On positive programs stratified evaluation must coincide with the
      // plain fixpoint (a single stratum per SCC chain).
      {"stratified", EvaluateStratified},
      {"parallel x1", parallel1},
      {"parallel x2", parallel2},
      {"parallel x4", parallel4},
      {"scc parallel x4", scc_parallel4},
  };
  for (const EngineRun& engine : engines) {
    Database db = c.edb;
    Result<EvalStats> stats = engine.run(c.program, &db);
    ASSERT_TRUE(stats.ok())
        << engine.name << ": " << stats.status().ToString();
    EXPECT_EQ(db, reference) << engine.name << " diverges on seed "
                             << GetParam() << "\nreference:\n"
                             << reference.ToString() << "\ngot:\n"
                             << db.ToString();
  }
}

TEST_P(DifferentialEngineTest, MagicSetsRewriteAgreesOnEveryIdbPredicate) {
  GeneratedCase c = MakeCase(GetParam());

  Database reference = c.edb;
  ASSERT_TRUE(EvaluateSemiNaive(c.program, &reference).ok());

  for (std::size_t k = 0; k < c.num_intentional; ++k) {
    const std::string name = "i" + std::to_string(k);
    PredicateId pred = c.symbols->LookupPredicate(name).value();
    Atom query = ParseQueryOrDie(c.symbols, "?- " + name + "(x, y).");
    Result<std::vector<Tuple>> magic =
        AnswerQuery(c.program, c.edb, query, EvalMethod::kMagicSemiNaive);
    ASSERT_TRUE(magic.ok()) << name << ": " << magic.status().ToString();
    std::set<Tuple> expected(reference.relation(pred).rows().begin(),
                             reference.relation(pred).rows().end());
    EXPECT_EQ(std::set<Tuple>(magic->begin(), magic->end()), expected)
        << "magic sets diverge on " << name << ", seed " << GetParam();
  }
}

TEST_P(DifferentialEngineTest, TabledTopDownAgreesOnEveryIdbPredicate) {
  // The tabled top-down solver answers an all-free query per IDB
  // predicate; its answer set must equal that predicate's relation in the
  // bottom-up fixpoint (completeness AND soundness of the memo tables).
  GeneratedCase c = MakeCase(GetParam());

  Database reference = c.edb;
  ASSERT_TRUE(EvaluateSemiNaive(c.program, &reference).ok());

  for (std::size_t k = 0; k < c.num_intentional; ++k) {
    const std::string name = "i" + std::to_string(k);
    PredicateId pred = c.symbols->LookupPredicate(name).value();
    Atom query = ParseQueryOrDie(c.symbols, "?- " + name + "(x, y).");
    Result<std::vector<Tuple>> answers =
        SolveTopDown(c.program, c.edb, query);
    ASSERT_TRUE(answers.ok()) << name << ": " << answers.status().ToString();
    std::set<Tuple> expected(reference.relation(pred).rows().begin(),
                             reference.relation(pred).rows().end());
    EXPECT_EQ(std::set<Tuple>(answers->begin(), answers->end()), expected)
        << "tabled top-down diverges on " << name << ", seed " << GetParam();
  }
}

TEST_P(DifferentialEngineTest, IncrementalViewMatchesFromScratchAfterCommits) {
  // The incremental oracle: drive a MaterializedView through random
  // insert/retract batches and assert that after every commit the view
  // equals a from-scratch semi-naive evaluation of the updated base.
  const std::uint64_t seed = GetParam();
  GeneratedCase c = MakeCase(seed);
  IncrOptions options;
  options.num_threads = seed % 2 == 0 ? 1 : 2;  // exercise both paths
  Result<MaterializedView> view =
      MaterializedView::Create(c.program, c.edb, options);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  {
    Database ref = c.edb;
    ASSERT_TRUE(EvaluateSemiNaive(c.program, &ref).ok());
    ASSERT_EQ(view->db(), ref) << "initial materialization, seed " << seed;
  }

  const std::size_t num_extensional = 1 + seed % 3;
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
  for (int batch = 0; batch < 20; ++batch) {
    Transaction txn = view->Begin();
    const int num_ops = 1 + static_cast<int>(rng() % 4);
    for (int op = 0; op < num_ops; ++op) {
      PredicateId pred =
          c.symbols
              ->LookupPredicate("e" + std::to_string(rng() % num_extensional))
              .value();
      const bool insert = rng() % 2 == 0;
      const auto& rows = view->base().relation(pred).rows();
      if (!insert && !rows.empty() && rng() % 4 != 0) {
        // Mostly retract facts that exist so deletions do real work.
        ASSERT_TRUE(txn.Retract(pred, rows[rng() % rows.size()]).ok());
        continue;
      }
      Tuple tuple = {Value::Int(static_cast<std::int64_t>(rng() % 12)),
                     Value::Int(static_cast<std::int64_t>(rng() % 12))};
      ASSERT_TRUE((insert ? txn.Insert(pred, std::move(tuple))
                          : txn.Retract(pred, std::move(tuple)))
                      .ok());
    }
    Result<CommitStats> stats = txn.Commit();
    ASSERT_TRUE(stats.ok())
        << "seed " << seed << " batch " << batch << ": "
        << stats.status().ToString();

    Database ref = view->base();
    ASSERT_TRUE(EvaluateSemiNaive(c.program, &ref).ok());
    ASSERT_EQ(view->db(), ref)
        << "incremental view diverges on seed " << seed << ", batch "
        << batch << "\nreference:\n"
        << ref.ToString() << "\ngot:\n"
        << view->db().ToString();
  }
}

TEST_P(DifferentialEngineTest, CompiledPlansAgreeAcrossKnobMatrix) {
  // The compiled-vs-legacy matcher axis, crossed with the other three
  // ablation knobs (columnar storage on/off x greedy ordering on/off x
  // index lookups on/off). Every configuration must reach the identical
  // fixpoint, and -- because substitutions count complete body matches,
  // which no join order, access path, or storage backend changes -- the
  // identical substitutions total, for semi-naive and for the parallel
  // engine at 4 threads.
  KnobMatrixGuard guard;
  GeneratedCase c = MakeCase(GetParam());

  Database reference = c.edb;
  Result<EvalStats> ref_stats = EvaluateSemiNaive(c.program, &reference);
  ASSERT_TRUE(ref_stats.ok()) << ref_stats.status().ToString();

  // The parallel engine's round structure legitimately counts a slightly
  // different substitutions total than sequential semi-naive (its deltas
  // are sharded per round), so it gets its own reference; within each
  // engine the count must be invariant across the whole knob matrix.
  Database par_reference = c.edb;
  Result<EvalStats> par_ref_stats =
      EvaluateSemiNaiveParallel(c.program, &par_reference, 4);
  ASSERT_TRUE(par_ref_stats.ok()) << par_ref_stats.status().ToString();
  ASSERT_EQ(par_reference, reference);

  for (bool columnar : {true, false}) {
    SetColumnarStorage(columnar);
    // Regenerate the case under this backend: relations choose their
    // storage at construction, so a fresh EDB puts every relation --
    // base facts included -- on the backend under test. The generator
    // is seed-deterministic, so the facts are identical.
    GeneratedCase cc = MakeCase(GetParam());
    for (bool compiled : {true, false}) {
      for (bool greedy : {true, false}) {
        for (bool indexed : {true, false}) {
          SetCompiledRulePlans(compiled);
          SetGreedyJoinOrdering(greedy);
          SetIndexLookups(indexed);
          const std::string config =
              std::string("columnar=") + (columnar ? "1" : "0") +
              " compiled=" + (compiled ? "1" : "0") +
              " greedy=" + (greedy ? "1" : "0") +
              " index=" + (indexed ? "1" : "0") +
              " seed=" + std::to_string(GetParam());

          Database seq = cc.edb;
          Result<EvalStats> seq_stats = EvaluateSemiNaive(cc.program, &seq);
          ASSERT_TRUE(seq_stats.ok())
              << config << ": " << seq_stats.status().ToString();
          EXPECT_EQ(seq, reference) << "semi-naive diverges, " << config;
          EXPECT_EQ(seq_stats->match.substitutions,
                    ref_stats->match.substitutions)
              << "substitutions drift, " << config;

          Database par = cc.edb;
          Result<EvalStats> par_stats =
              EvaluateSemiNaiveParallel(cc.program, &par, 4);
          ASSERT_TRUE(par_stats.ok())
              << config << ": " << par_stats.status().ToString();
          EXPECT_EQ(par, reference) << "parallel x4 diverges, " << config;
          EXPECT_EQ(par_stats->match.substitutions,
                    par_ref_stats->match.substitutions)
              << "parallel substitutions drift, " << config;
        }
      }
    }
  }
}

TEST_P(DifferentialEngineTest, BytecodeVmAgreesAcrossKnobMatrix) {
  // The bytecode-VM axis: flipping SetBytecodeExecution must be invisible
  // -- not just the same fixpoint but bit-identical MatchStats (the VM
  // replicates the struct interpreters' counter bumps operation for
  // operation), across columnar on/off and for both sequential semi-naive
  // and the parallel engine at 4 threads. On the row store the VM
  // declines and falls through, so that leg checks the fallback is clean.
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  for (bool columnar : {true, false}) {
    SetColumnarStorage(columnar);
    GeneratedCase c = MakeCase(seed);

    struct RunResult {
      Database db;
      EvalStats seq;
      EvalStats par;
    };
    auto run_both = [&](bool bytecode) {
      SetBytecodeExecution(bytecode);
      Database seq_db = c.edb;
      Result<EvalStats> seq = EvaluateSemiNaive(c.program, &seq_db);
      EXPECT_TRUE(seq.ok()) << seq.status().ToString();
      Database par_db = c.edb;
      Result<EvalStats> par =
          EvaluateSemiNaiveParallel(c.program, &par_db, 4);
      EXPECT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_EQ(par_db, seq_db);
      return RunResult{std::move(seq_db), *seq, *par};
    };

    RunResult vm = run_both(true);
    RunResult structs = run_both(false);
    const std::string config = std::string("columnar=") +
                               (columnar ? "1" : "0") +
                               " seed=" + std::to_string(seed);
    EXPECT_EQ(vm.db, structs.db) << "bytecode fixpoint diverges, " << config;
    EXPECT_EQ(vm.seq.match.substitutions, structs.seq.match.substitutions)
        << config;
    EXPECT_EQ(vm.seq.match.index_lookups, structs.seq.match.index_lookups)
        << config;
    EXPECT_EQ(vm.seq.match.tuples_scanned, structs.seq.match.tuples_scanned)
        << config;
    EXPECT_EQ(vm.par.match.substitutions, structs.par.match.substitutions)
        << "parallel, " << config;
    EXPECT_EQ(vm.par.match.index_lookups, structs.par.match.index_lookups)
        << "parallel, " << config;
    EXPECT_EQ(vm.par.match.tuples_scanned, structs.par.match.tuples_scanned)
        << "parallel, " << config;
  }
}

TEST_P(DifferentialEngineTest, BytecodeVmAgreesOnIncrementalCommits) {
  // The incremental commit path (three-part delta joins through the
  // CompiledRuleCache) with the VM on vs off over the same transaction
  // script: every snapshot must be identical.
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  auto run_script = [&](bool bytecode) {
    SetBytecodeExecution(bytecode);
    GeneratedCase c = MakeCase(seed);
    IncrOptions options;
    options.num_threads = seed % 2 == 0 ? 1 : 2;
    Result<MaterializedView> view =
        MaterializedView::Create(c.program, c.edb, options);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    const std::size_t num_extensional = 1 + seed % 3;
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 29);
    std::vector<Database> snapshots;
    for (int batch = 0; batch < 8; ++batch) {
      Transaction txn = view->Begin();
      const int num_ops = 1 + static_cast<int>(rng() % 4);
      for (int op = 0; op < num_ops; ++op) {
        PredicateId pred =
            c.symbols
                ->LookupPredicate("e" +
                                  std::to_string(rng() % num_extensional))
                .value();
        const bool insert = rng() % 2 == 0;
        const auto& rows = view->base().relation(pred).rows();
        if (!insert && !rows.empty() && rng() % 4 != 0) {
          EXPECT_TRUE(txn.Retract(pred, rows[rng() % rows.size()]).ok());
          continue;
        }
        Tuple tuple = {Value::Int(static_cast<std::int64_t>(rng() % 12)),
                       Value::Int(static_cast<std::int64_t>(rng() % 12))};
        EXPECT_TRUE((insert ? txn.Insert(pred, std::move(tuple))
                            : txn.Retract(pred, std::move(tuple)))
                        .ok());
      }
      Result<CommitStats> stats = txn.Commit();
      EXPECT_TRUE(stats.ok()) << "seed " << seed << " batch " << batch
                              << ": " << stats.status().ToString();
      snapshots.push_back(view->db());
    }
    return snapshots;
  };

  const std::vector<Database> vm = run_script(true);
  const std::vector<Database> structs = run_script(false);
  ASSERT_EQ(vm.size(), structs.size());
  for (std::size_t i = 0; i < vm.size(); ++i) {
    EXPECT_EQ(vm[i], structs[i])
        << "bytecode incremental commit path diverges on seed " << seed
        << ", batch " << i;
  }
}

TEST_P(DifferentialEngineTest, CompiledPlansAgreeOnIncrementalCommits) {
  // The incremental commit path (delta joins + DRed re-derivation) run
  // over the same transaction script under every (matcher, storage
  // backend) combination; the view must be identical after every commit.
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  auto run_script = [&](bool compiled, bool columnar) {
    SetCompiledRulePlans(compiled);
    SetColumnarStorage(columnar);
    GeneratedCase c = MakeCase(seed);
    IncrOptions options;
    options.num_threads = seed % 2 == 0 ? 1 : 2;
    Result<MaterializedView> view =
        MaterializedView::Create(c.program, c.edb, options);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    const std::size_t num_extensional = 1 + seed % 3;
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 7);
    std::vector<Database> snapshots;
    for (int batch = 0; batch < 8; ++batch) {
      Transaction txn = view->Begin();
      const int num_ops = 1 + static_cast<int>(rng() % 4);
      for (int op = 0; op < num_ops; ++op) {
        PredicateId pred =
            c.symbols
                ->LookupPredicate("e" +
                                  std::to_string(rng() % num_extensional))
                .value();
        const bool insert = rng() % 2 == 0;
        const auto& rows = view->base().relation(pred).rows();
        if (!insert && !rows.empty() && rng() % 4 != 0) {
          EXPECT_TRUE(txn.Retract(pred, rows[rng() % rows.size()]).ok());
          continue;
        }
        Tuple tuple = {Value::Int(static_cast<std::int64_t>(rng() % 12)),
                       Value::Int(static_cast<std::int64_t>(rng() % 12))};
        EXPECT_TRUE((insert ? txn.Insert(pred, std::move(tuple))
                            : txn.Retract(pred, std::move(tuple)))
                        .ok());
      }
      Result<CommitStats> stats = txn.Commit();
      EXPECT_TRUE(stats.ok()) << "seed " << seed << " batch " << batch
                              << ": " << stats.status().ToString();
      snapshots.push_back(view->db());
    }
    return snapshots;
  };

  const std::vector<Database> reference = run_script(true, true);
  const struct {
    bool compiled;
    bool columnar;
    const char* name;
  } variants[] = {{false, true, "legacy/columnar"},
                  {true, false, "compiled/rowstore"},
                  {false, false, "legacy/rowstore"}};
  for (const auto& v : variants) {
    std::vector<Database> got = run_script(v.compiled, v.columnar);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], reference[i])
          << "incremental commit path (" << v.name << ") diverges on seed "
          << seed << ", batch " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialEngineTest,
                         ::testing::Range<std::uint64_t>(0, 50));

// ---------------------------------------------------------------------------
// Multiway-join differential matrix over the cyclic workload family.
//
// The cyclic generator produces exactly the bodies (triangles, k-cycles,
// cliques, dense same-generation) where the planner selects the
// worst-case-optimal multiway shape, so these cases exercise the
// multiway executor on every seed instead of relying on the planted
// generator to stumble into a cyclic body. Every knob combination --
// multiway x left-deep x columnar x {sequential, parallel x4,
// incremental commit scripts} -- must reach bit-identical fixpoints and
// (within an engine) identical substitution counts.
// ---------------------------------------------------------------------------

struct CyclicCase {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  Database edb;
  /// EDB predicate names for transaction scripts ("e", or the three
  /// tree predicates for kDenseSameGen).
  std::vector<std::string> edb_preds;

  explicit CyclicCase(std::shared_ptr<SymbolTable> s)
      : symbols(std::move(s)), edb(symbols) {}
};

/// Derives a cyclic program/database pair from the seed alone: the shape
/// rotates through the family and every size knob wiggles so the 50
/// cases cover skewed hubs, different cycle lengths, and both tree
/// geometries. Sizes stay small; the point is coverage, not load.
CyclicCase MakeCyclicCase(std::uint64_t seed) {
  CyclicCase c(MakeSymbols());
  CyclicOptions options;
  const CyclicShape shapes[] = {CyclicShape::kTriangle, CyclicShape::kKCycle,
                                CyclicShape::kClique,
                                CyclicShape::kDenseSameGen};
  options.shape = shapes[seed % 4];
  options.num_nodes = 6 + seed % 6;
  options.num_edges = 2 * options.num_nodes + seed % 5;
  options.num_hubs = 1;
  options.num_planted = 1 + seed % 2;
  options.cycle_length = 3 + (seed / 4) % 3;
  options.depth = 2 + seed % 2;
  options.fanout = 2 + (seed / 2) % 2;
  options.seed = seed * 6364136223846793005ull + 3;
  c.program = ParseProgramOrDie(c.symbols, CyclicProgramText(options));
  if (options.shape == CyclicShape::kDenseSameGen) {
    PredicateId up = c.symbols->LookupPredicate("up").value();
    PredicateId down = c.symbols->LookupPredicate("down").value();
    PredicateId flat = c.symbols->LookupPredicate("flat").value();
    AddDenseSameGenFacts(options, up, down, flat, &c.edb);
    c.edb_preds = {"up", "down", "flat"};
  } else {
    AddCyclicFacts(options, c.symbols->LookupPredicate("e").value(), &c.edb);
    c.edb_preds = {"e"};
  }
  return c;
}

class DifferentialEngineMultiwayTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialEngineMultiwayTest, MultiwayAndLeftDeepShapesAgree) {
  // Fixpoint + substitutions agreement across multiway on/off x columnar
  // on/off, for sequential semi-naive and the parallel engine at 4
  // threads. Substitutions count complete body matches, which no plan
  // shape changes, so they must be bit-identical within each engine.
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  // Reference: the left-deep shape (multiway off) on the default
  // columnar backend.
  SetMultiwayJoins(false);
  CyclicCase ref_case = MakeCyclicCase(seed);
  Database reference = ref_case.edb;
  Result<EvalStats> ref_stats =
      EvaluateSemiNaive(ref_case.program, &reference);
  ASSERT_TRUE(ref_stats.ok()) << ref_stats.status().ToString();

  Database par_reference = ref_case.edb;
  Result<EvalStats> par_ref_stats =
      EvaluateSemiNaiveParallel(ref_case.program, &par_reference, 4);
  ASSERT_TRUE(par_ref_stats.ok()) << par_ref_stats.status().ToString();
  ASSERT_EQ(par_reference, reference);

  for (bool columnar : {true, false}) {
    SetColumnarStorage(columnar);
    // Regenerate under this backend: relations choose their storage at
    // construction, and the generator is seed-deterministic.
    CyclicCase c = MakeCyclicCase(seed);
    for (bool multiway : {true, false}) {
      SetMultiwayJoins(multiway);
      const std::string config =
          std::string("multiway=") + (multiway ? "1" : "0") +
          " columnar=" + (columnar ? "1" : "0") +
          " seed=" + std::to_string(seed);

      Database seq = c.edb;
      Result<EvalStats> seq_stats = EvaluateSemiNaive(c.program, &seq);
      ASSERT_TRUE(seq_stats.ok())
          << config << ": " << seq_stats.status().ToString();
      EXPECT_EQ(seq, reference) << "semi-naive diverges, " << config;
      EXPECT_EQ(seq_stats->match.substitutions,
                ref_stats->match.substitutions)
          << "substitutions drift, " << config;

      Database par = c.edb;
      Result<EvalStats> par_stats =
          EvaluateSemiNaiveParallel(c.program, &par, 4);
      ASSERT_TRUE(par_stats.ok())
          << config << ": " << par_stats.status().ToString();
      EXPECT_EQ(par, reference) << "parallel x4 diverges, " << config;
      EXPECT_EQ(par_stats->match.substitutions,
                par_ref_stats->match.substitutions)
          << "parallel substitutions drift, " << config;
    }
  }
}

TEST_P(DifferentialEngineMultiwayTest, MultiwayIncrementalCommitScriptsAgree) {
  // The incremental commit path over a cyclic program: the same random
  // insert/retract script replayed under every (multiway, storage)
  // combination must produce identical view snapshots after every
  // commit, and each final view must equal a from-scratch fixpoint of
  // its final base (so all variants cannot agree on a wrong answer).
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  auto run_script = [&](bool multiway, bool columnar) {
    SetMultiwayJoins(multiway);
    SetColumnarStorage(columnar);
    CyclicCase c = MakeCyclicCase(seed);
    IncrOptions options;
    options.num_threads = seed % 2 == 0 ? 1 : 4;
    Result<MaterializedView> view =
        MaterializedView::Create(c.program, c.edb, options);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 13);
    std::vector<Database> snapshots;
    for (int batch = 0; batch < 8; ++batch) {
      Transaction txn = view->Begin();
      const int num_ops = 1 + static_cast<int>(rng() % 4);
      for (int op = 0; op < num_ops; ++op) {
        PredicateId pred =
            c.symbols
                ->LookupPredicate(c.edb_preds[rng() % c.edb_preds.size()])
                .value();
        const bool insert = rng() % 2 == 0;
        const auto& rows = view->base().relation(pred).rows();
        if (!insert && !rows.empty() && rng() % 4 != 0) {
          EXPECT_TRUE(txn.Retract(pred, rows[rng() % rows.size()]).ok());
          continue;
        }
        Tuple tuple = {Value::Int(static_cast<std::int64_t>(rng() % 16)),
                       Value::Int(static_cast<std::int64_t>(rng() % 16))};
        EXPECT_TRUE((insert ? txn.Insert(pred, std::move(tuple))
                            : txn.Retract(pred, std::move(tuple)))
                        .ok());
      }
      Result<CommitStats> stats = txn.Commit();
      EXPECT_TRUE(stats.ok()) << "seed " << seed << " batch " << batch
                              << ": " << stats.status().ToString();
      snapshots.push_back(view->db());
    }
    Database ref = view->base();
    EXPECT_TRUE(EvaluateSemiNaive(c.program, &ref).ok());
    EXPECT_EQ(view->db(), ref)
        << "incremental view diverges from from-scratch oracle, multiway="
        << multiway << " columnar=" << columnar << " seed=" << seed;
    return snapshots;
  };

  const std::vector<Database> reference = run_script(false, true);
  const struct {
    bool multiway;
    bool columnar;
    const char* name;
  } variants[] = {{true, true, "multiway/columnar"},
                  {true, false, "multiway/rowstore"},
                  {false, false, "left-deep/rowstore"}};
  for (const auto& v : variants) {
    std::vector<Database> got = run_script(v.multiway, v.columnar);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], reference[i])
          << "incremental commit path (" << v.name << ") diverges on seed "
          << seed << ", batch " << i;
    }
  }
}

TEST_P(DifferentialEngineMultiwayTest, BytecodeVmAgreesAcrossPlanShapes) {
  // The bytecode axis crossed with plan shape: the VM lowers both the
  // left-deep batch schedule and the leapfrog multiway schedule, and on
  // each it must be invisible -- same fixpoint, bit-identical MatchStats
  // -- against the struct interpreter under the same knobs, sequentially
  // and at 4 threads, on both storage backends.
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  for (bool columnar : {true, false}) {
    SetColumnarStorage(columnar);
    CyclicCase c = MakeCyclicCase(seed);
    for (bool multiway : {true, false}) {
      SetMultiwayJoins(multiway);

      struct RunResult {
        Database db;
        EvalStats seq;
        EvalStats par;
      };
      auto run_both = [&](bool bytecode) {
        SetBytecodeExecution(bytecode);
        Database seq_db = c.edb;
        Result<EvalStats> seq = EvaluateSemiNaive(c.program, &seq_db);
        EXPECT_TRUE(seq.ok()) << seq.status().ToString();
        Database par_db = c.edb;
        Result<EvalStats> par =
            EvaluateSemiNaiveParallel(c.program, &par_db, 4);
        EXPECT_TRUE(par.ok()) << par.status().ToString();
        EXPECT_EQ(par_db, seq_db);
        return RunResult{std::move(seq_db), *seq, *par};
      };

      RunResult vm = run_both(true);
      RunResult structs = run_both(false);
      const std::string config =
          std::string("multiway=") + (multiway ? "1" : "0") +
          " columnar=" + (columnar ? "1" : "0") +
          " seed=" + std::to_string(seed);
      EXPECT_EQ(vm.db, structs.db)
          << "bytecode fixpoint diverges, " << config;
      EXPECT_EQ(vm.seq.match.substitutions, structs.seq.match.substitutions)
          << config;
      EXPECT_EQ(vm.seq.match.index_lookups, structs.seq.match.index_lookups)
          << config;
      EXPECT_EQ(vm.seq.match.tuples_scanned,
                structs.seq.match.tuples_scanned)
          << config;
      EXPECT_EQ(vm.par.match.substitutions, structs.par.match.substitutions)
          << "parallel, " << config;
      EXPECT_EQ(vm.par.match.index_lookups, structs.par.match.index_lookups)
          << "parallel, " << config;
      EXPECT_EQ(vm.par.match.tuples_scanned,
                structs.par.match.tuples_scanned)
          << "parallel, " << config;
    }
  }
}

TEST_P(DifferentialEngineMultiwayTest,
       BytecodeIncrementalCommitScriptsAgree) {
  // The same random commit script replayed with the VM on vs off, under
  // both plan shapes: identical snapshots after every commit.
  KnobMatrixGuard guard;
  const std::uint64_t seed = GetParam();

  auto run_script = [&](bool bytecode, bool multiway) {
    SetBytecodeExecution(bytecode);
    SetMultiwayJoins(multiway);
    CyclicCase c = MakeCyclicCase(seed);
    IncrOptions options;
    options.num_threads = seed % 2 == 0 ? 1 : 4;
    Result<MaterializedView> view =
        MaterializedView::Create(c.program, c.edb, options);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 31);
    std::vector<Database> snapshots;
    for (int batch = 0; batch < 8; ++batch) {
      Transaction txn = view->Begin();
      const int num_ops = 1 + static_cast<int>(rng() % 4);
      for (int op = 0; op < num_ops; ++op) {
        PredicateId pred =
            c.symbols
                ->LookupPredicate(c.edb_preds[rng() % c.edb_preds.size()])
                .value();
        const bool insert = rng() % 2 == 0;
        const auto& rows = view->base().relation(pred).rows();
        if (!insert && !rows.empty() && rng() % 4 != 0) {
          EXPECT_TRUE(txn.Retract(pred, rows[rng() % rows.size()]).ok());
          continue;
        }
        Tuple tuple = {Value::Int(static_cast<std::int64_t>(rng() % 16)),
                       Value::Int(static_cast<std::int64_t>(rng() % 16))};
        EXPECT_TRUE((insert ? txn.Insert(pred, std::move(tuple))
                            : txn.Retract(pred, std::move(tuple)))
                        .ok());
      }
      Result<CommitStats> stats = txn.Commit();
      EXPECT_TRUE(stats.ok()) << "seed " << seed << " batch " << batch
                              << ": " << stats.status().ToString();
      snapshots.push_back(view->db());
    }
    return snapshots;
  };

  for (bool multiway : {true, false}) {
    const std::vector<Database> vm = run_script(true, multiway);
    const std::vector<Database> structs = run_script(false, multiway);
    ASSERT_EQ(vm.size(), structs.size());
    for (std::size_t i = 0; i < vm.size(); ++i) {
      EXPECT_EQ(vm[i], structs[i])
          << "bytecode incremental commit path diverges on seed " << seed
          << ", multiway=" << multiway << ", batch " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialEngineMultiwayTest,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace datalog
