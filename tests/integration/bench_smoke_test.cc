// Smoke tests for the benchmark binaries: each must start, list its
// benchmarks, and run one case. Keeps the harness from rotting without
// paying full measurement time in CI.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

#ifndef DATALOG_BENCH_DIR
#define DATALOG_BENCH_DIR "build/bench"
#endif

int RunCommand(const std::string& command, std::string* stdout_text) {
  FILE* pipe = popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  stdout_text->clear();
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *stdout_text += buffer;
  }
  return WEXITSTATUS(pclose(pipe));
}

class BenchSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchSmokeTest, ListsAndRunsOneCase) {
  const std::string binary = std::string(DATALOG_BENCH_DIR) + "/" + GetParam();
  std::string listing;
  ASSERT_EQ(RunCommand(binary + " --benchmark_list_tests", &listing), 0)
      << binary;
  ASSERT_FALSE(listing.empty());

  // Run exactly the first listed benchmark, minimally.
  std::string first = listing.substr(0, listing.find('\n'));
  std::string output;
  int code = RunCommand(binary + " --benchmark_filter='^" + first +
                            "$' --benchmark_min_time=0.01",
                        &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find(first.substr(0, first.find('/'))), std::string::npos)
      << output;
}

INSTANTIATE_TEST_SUITE_P(
    Binaries, BenchSmokeTest,
    ::testing::Values("bench_eval_speedup", "bench_minimize",
                      "bench_magic_sets", "bench_chase", "bench_engine",
                      "bench_cq", "bench_ablation", "bench_parallel",
                      "bench_incr"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(BenchJsonTest, JsonFlagWritesBenchmarkResults) {
  // `--json PATH` must produce google-benchmark JSON at PATH while the
  // console output still appears. bench_incr also carries the speedup
  // counter the incremental-evaluation claim is tracked by.
  const std::string path = ::testing::TempDir() + "/bench_incr_smoke.json";
  std::remove(path.c_str());
  const std::string binary = std::string(DATALOG_BENCH_DIR) + "/bench_incr";
  std::string output;
  int code = RunCommand(
      binary +
          " --json " + path +
          " --benchmark_filter='BM_IncrCommitPair/n:64/delta:1$'"
          " --benchmark_min_time=0.01",
      &output);
  ASSERT_EQ(code, 0) << output;

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "missing " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("BM_IncrCommitPair"), std::string::npos);
  EXPECT_NE(json.find("work_speedup"), std::string::npos);
}

}  // namespace
}  // namespace datalog
