// Smoke tests that RUN every example binary: examples rot unless CI
// executes them. Paths are injected by CMake.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace datalog {
namespace {

#ifndef DATALOG_EXAMPLES_DIR
#define DATALOG_EXAMPLES_DIR "build/examples"
#endif

int RunExample(const std::string& name, std::string* stdout_text) {
  std::string command =
      std::string(DATALOG_EXAMPLES_DIR) + "/" + name + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  stdout_text->clear();
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *stdout_text += buffer;
  }
  return WEXITSTATUS(pclose(pipe));
}

TEST(ExamplesSmokeTest, Quickstart) {
  std::string out;
  ASSERT_EQ(RunExample("quickstart", &out), 0);
  EXPECT_NE(out.find("minimized program"), std::string::npos) << out;
  EXPECT_NE(out.find("g(1, 4)"), std::string::npos) << out;
}

TEST(ExamplesSmokeTest, TransitiveClosure) {
  std::string out;
  ASSERT_EQ(RunExample("transitive_closure", &out), 0);
  EXPECT_NE(out.find("P2 subseteq^u P1: yes"), std::string::npos) << out;
  EXPECT_NE(out.find("P1 subseteq^u P2: no"), std::string::npos) << out;
  EXPECT_NE(out.find("NOT uniformly equivalent"), std::string::npos) << out;
}

TEST(ExamplesSmokeTest, EquivalenceOptimizer) {
  std::string out;
  ASSERT_EQ(RunExample("equivalence_optimizer", &out), 0);
  EXPECT_NE(out.find("removes"), std::string::npos) << out;
  EXPECT_NE(out.find("witness tgd"), std::string::npos) << out;
  // Example 18's final program appears verbatim.
  EXPECT_NE(out.find("g(x, z) :- g(x, y), g(y, z).\n"), std::string::npos)
      << out;
}

TEST(ExamplesSmokeTest, BillOfMaterials) {
  std::string out;
  ASSERT_EQ(RunExample("bill_of_materials", &out), 0);
  EXPECT_NE(out.find("'bike' needs 'bearing'"), std::string::npos) << out;
  EXPECT_NE(out.find("5 answers"), std::string::npos) << out;
}

TEST(ExamplesSmokeTest, Constraints) {
  std::string out;
  ASSERT_EQ(RunExample("constraints", &out), 0);
  EXPECT_NE(out.find("relative to SAT(T) removes 1"), std::string::npos)
      << out;
  EXPECT_NE(out.find("outputs agree on a SAT(T) database: yes"),
            std::string::npos)
      << out;
}

TEST(ExamplesSmokeTest, AccessControl) {
  std::string out;
  ASSERT_EQ(RunExample("access_control", &out), 0);
  EXPECT_NE(out.find("bob read wiki? ALLOW"), std::string::npos) << out;
  EXPECT_NE(out.find("holds('bob', 'reader')"), std::string::npos) << out;
  // cao is denied: must not appear among wiki readers.
  EXPECT_EQ(out.find("'cao' may 'read' 'wiki'"), std::string::npos) << out;
}

TEST(ExamplesSmokeTest, PointsTo) {
  std::string out;
  ASSERT_EQ(RunExample("points_to", &out), 0);
  EXPECT_NE(out.find("c -> 'o2'"), std::string::npos) << out;
  EXPECT_NE(out.find("derivation of pts('c', 'o2')"), std::string::npos)
      << out;
}

}  // namespace
}  // namespace datalog
