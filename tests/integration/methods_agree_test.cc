// Differential testing across every evaluation path in the library:
// naive, semi-naive, SCC-ordered semi-naive, stratified (on positive
// programs), magic sets, and tabled top-down must tell one story.

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseQueryOrDie;

class MethodsAgreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MethodsAgreeSweep, FixpointsIdenticalOnPlantedPrograms) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.planted_atoms = 1;
  options.planted_rules = 1;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  const Program& p = planted->program;

  Database base(symbols);
  PredicateId e0 = symbols->LookupPredicate("e0").value();
  PredicateId e1 = symbols->LookupPredicate("e1").value();
  AddGraphFacts({GraphShape::kRandom, 7, 12, GetParam()}, e0, &base);
  AddGraphFacts({GraphShape::kChain, 7}, e1, &base);

  Database naive_db(symbols), semi_db(symbols), scc_db(symbols),
      strat_db(symbols);
  for (Database* db : {&naive_db, &semi_db, &scc_db, &strat_db}) {
    db->UnionWith(base);
  }
  ASSERT_TRUE(EvaluateNaive(p, &naive_db).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &semi_db).ok());
  ASSERT_TRUE(EvaluateSemiNaiveScc(p, &scc_db).ok());
  ASSERT_TRUE(EvaluateStratified(p, &strat_db).ok());
  EXPECT_EQ(naive_db, semi_db);
  EXPECT_EQ(naive_db, scc_db);
  EXPECT_EQ(naive_db, strat_db);
}

TEST_P(MethodsAgreeSweep, QueriesIdenticalAcrossDemandMethods) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam() + 500;
  options.planted_atoms = 0;
  options.planted_rules = 0;
  options.chain_rules = 2;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  const Program& p = planted->program;

  Database edb(symbols);
  PredicateId e0 = symbols->LookupPredicate("e0").value();
  PredicateId e1 = symbols->LookupPredicate("e1").value();
  AddGraphFacts({GraphShape::kRandom, 6, 10, GetParam()}, e0, &edb);
  AddGraphFacts({GraphShape::kChain, 6}, e1, &edb);

  Atom query = ParseQueryOrDie(symbols, "?- i1(0, x).");
  Result<std::vector<Tuple>> semi =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  Result<std::vector<Tuple>> top =
      AnswerQuery(p, edb, query, EvalMethod::kTabledTopDown);
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(top.ok());
  std::set<Tuple> reference(semi->begin(), semi->end());
  EXPECT_EQ(std::set<Tuple>(magic->begin(), magic->end()), reference);
  EXPECT_EQ(std::set<Tuple>(top->begin(), top->end()), reference);
}

TEST_P(MethodsAgreeSweep, MinimizationInvariantUnderAllMethods) {
  // The headline invariant, measured through every engine: minimized
  // programs compute the same fixpoint as their originals.
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam() + 900;
  options.planted_atoms = 2;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Result<Program> minimized = MinimizeProgram(planted->program);
  ASSERT_TRUE(minimized.ok());

  Database base(symbols);
  PredicateId e0 = symbols->LookupPredicate("e0").value();
  AddGraphFacts({GraphShape::kRandom, 7, 14, GetParam()}, e0, &base);

  for (auto evaluate : {EvaluateSemiNaive, EvaluateSemiNaiveScc}) {
    Database d1(symbols), d2(symbols);
    d1.UnionWith(base);
    d2.UnionWith(base);
    ASSERT_TRUE(evaluate(planted->program, &d1).ok());
    ASSERT_TRUE(evaluate(minimized.value(), &d2).ok());
    EXPECT_EQ(d1, d2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodsAgreeSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace datalog
