// End-to-end smoke test of `datalog-opt serve` / `datalog-opt client`: a
// real server process on a real AF_UNIX socket, driven by a client batch
// script, with a clean shutdown verified via the server's exit status.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace datalog {
namespace {

#ifndef DATALOG_CLI_PATH
#define DATALOG_CLI_PATH "datalog-opt"
#endif

int RunCli(const std::string& args, std::string* stdout_text) {
  std::string command = std::string(DATALOG_CLI_PATH) + " " + args +
                        " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  stdout_text->clear();
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *stdout_text += buffer;
  }
  int status = pclose(pipe);
  return WEXITSTATUS(status);
}

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "/datalog_smoke_" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

/// Waits for the server to bind its socket (the socket file appearing is
/// the signal; bind happens before the accept loop starts).
bool WaitForSocket(const std::string& path, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    if (::access(path.c_str(), F_OK) == 0) return true;
    ::usleep(20 * 1000);
  }
  return false;
}

TEST(ServerSmokeTest, ServeAnswersClientScriptAndShutsDownCleanly) {
  const std::string program = WriteTemp("srv.dl",
                                        "path(x, y) :- edge(x, y).\n"
                                        "path(x, z) :- path(x, y), edge(y, z).\n");
  const std::string facts = WriteTemp("srv_facts.dl", "edge(1, 2). edge(2, 3).");
  const std::string socket_path =
      ::testing::TempDir() + "/dlsmoke_" + std::to_string(::getpid()) + ".sock";
  ::unlink(socket_path.c_str());

  // Launch the server as a real child process; pclose() later both reaps
  // it and surfaces its exit status.
  const std::string serve_cmd = std::string(DATALOG_CLI_PATH) + " serve " +
                                program + " " + facts + " " + socket_path +
                                " --workers 2 2>/dev/null";
  FILE* server = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(server, nullptr);
  const bool socket_up = WaitForSocket(socket_path, /*timeout_ms=*/10000);

  std::string out;
  int client_code = -1;
  if (socket_up) {
    const std::string script = WriteTemp("srv_script.dl",
                                         "ping\n"
                                         "?path(1, x)\n"
                                         "+edge(3, 4).\n"
                                         "commit\n"
                                         "?path(1, x)\n"
                                         "stats\n"
                                         "shutdown\n");
    client_code = RunCli("client " + socket_path + " " + script, &out);
    if (client_code != 0) {
      // Best effort: make sure the server is told to exit so pclose below
      // cannot hang, then fail on client_code.
      const std::string bye = WriteTemp("srv_bye.dl", "shutdown\n");
      std::string ignored;
      RunCli("client " + socket_path + " " + bye, &ignored);
    }
  }

  const int server_code = WEXITSTATUS(pclose(server));
  ASSERT_TRUE(socket_up) << "server never bound " << socket_path;
  ASSERT_EQ(client_code, 0) << out;
  EXPECT_EQ(server_code, 0);

  // Epoch 0 answers, then epoch 1 answers including the committed edge,
  // then the stats JSON -- in script order on stdout.
  const std::string before = "path(1, 2).\npath(1, 3).\n";
  const std::string after = "path(1, 2).\npath(1, 3).\npath(1, 4).\n";
  const std::size_t before_at = out.find(before);
  ASSERT_NE(before_at, std::string::npos) << out;
  const std::size_t after_at = out.find(after, before_at + before.size());
  ASSERT_NE(after_at, std::string::npos) << out;
  const std::size_t stats_at = out.find("\"head_epoch\": 1", after_at);
  EXPECT_NE(stats_at, std::string::npos) << out;
  EXPECT_NE(out.find("\"queries\": 2"), std::string::npos) << out;

  // Clean shutdown removed the socket file.
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
}

TEST(ServerSmokeTest, ClientAgainstMissingServerFailsFast) {
  const std::string script = WriteTemp("noserver.dl", "ping\n");
  const std::string socket_path = ::testing::TempDir() + "/dl_nosrv.sock";
  ::unlink(socket_path.c_str());
  std::string out;
  int code = RunCli("client " + socket_path + " " + script, &out);
  EXPECT_NE(code, 0);
}

TEST(ServerSmokeTest, MalformedClientScriptFailsWithoutAServer) {
  // Script parse errors are caught before connecting.
  const std::string script = WriteTemp("badscript.dl", "flush\n");
  std::string out;
  int code = RunCli("client /nonexistent.sock " + script, &out);
  EXPECT_NE(code, 0);
}

}  // namespace
}  // namespace datalog
