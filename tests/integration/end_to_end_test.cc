// End-to-end pipelines: generate/parse -> minimize -> optimize ->
// evaluate, checking both semantics preservation and the claimed cost
// reductions.

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

TEST(EndToEndTest, MinimizeThenEvaluateMatchesOriginal) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 11;
  options.planted_atoms = 3;
  options.planted_rules = 1;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  Result<Program> minimized = MinimizeProgram(planted->program);
  ASSERT_TRUE(minimized.ok());

  PredicateId e0 = symbols->LookupPredicate("e0").value();
  PredicateId e1 = symbols->LookupPredicate("e1").value();
  Database d1(symbols), d2(symbols);
  AddGraphFacts({GraphShape::kRandom, 8, 14, 5}, e0, &d1);
  AddGraphFacts({GraphShape::kChain, 8}, e1, &d1);
  d2.UnionWith(d1);

  Result<EvalStats> s1 = EvaluateSemiNaive(planted->program, &d1);
  Result<EvalStats> s2 = EvaluateSemiNaive(minimized.value(), &d2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(d1, d2);
  // The paper's operative claim: fewer joins after minimization.
  EXPECT_LE(s2->match.substitutions, s1->match.substitutions);
}

TEST(EndToEndTest, EquivalenceOptimizerSpeedsUpGuardedTc) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Result<EquivalenceOptimizeResult> optimized = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ(optimized->removals.size(), 1u);

  PredicateId a = symbols->LookupPredicate("a").value();
  Database d1(symbols), d2(symbols);
  AddGraphFacts({GraphShape::kChain, 48}, a, &d1);
  d2.UnionWith(d1);
  Result<EvalStats> before = EvaluateSemiNaive(p, &d1);
  Result<EvalStats> after = EvaluateSemiNaive(optimized->program, &d2);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(d1, d2);
  EXPECT_LT(after->match.tuples_scanned, before->match.tuples_scanned);
}

TEST(EndToEndTest, MagicSetsBenefitsFromMinimization) {
  // The paper's Section I claim: "if the query is going to be computed
  // [by] the magic set method, then removing redundant parts can only
  // speed up the computation."
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w).\n");  // g(y,w) is redundant
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  ASSERT_LT(minimized->TotalBodyLiterals(), p.TotalBodyLiterals());

  PredicateId a = symbols->LookupPredicate("a").value();
  Database edb(symbols);
  AddGraphFacts({GraphShape::kChain, 32}, a, &edb);
  Atom query = ParseQueryOrDie(symbols, "?- g(0, x).");

  EvalStats before, after;
  Result<std::vector<Tuple>> r1 =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive, &before);
  Result<std::vector<Tuple>> r2 = AnswerQuery(
      minimized.value(), edb, query, EvalMethod::kMagicSemiNaive, &after);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(std::set<Tuple>(r1->begin(), r1->end()),
            std::set<Tuple>(r2->begin(), r2->end()));
  EXPECT_LE(after.match.tuples_scanned, before.match.tuples_scanned);
}

TEST(EndToEndTest, FullPipelineUniformThenEquivalence) {
  // Compose both optimizers on a program with both kinds of redundancy.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z), a(x, q).\n"                    // uniform: a(x,q)
      "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");         // equivalence only
  Result<Program> uniform = MinimizeProgram(p);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->rules()[0].body().size(), 1u);
  EXPECT_EQ(uniform->rules()[1].body().size(), 3u);  // guard survives

  Result<EquivalenceOptimizeResult> final_program =
      OptimizeUnderEquivalence(uniform.value());
  ASSERT_TRUE(final_program.ok());
  EXPECT_EQ(ToString(final_program->program),
            "g(x, z) :- a(x, z).\n"
            "g(x, z) :- g(x, y), g(y, z).\n");
}

TEST(EndToEndTest, StratifiedProgramOverOptimizedCore) {
  // The optimizers work on the positive core; negation consumes its
  // output downstream.
  auto symbols = MakeSymbols();
  Program core = ParseProgramOrDie(symbols,
                                   "g(x, z) :- a(x, z), a(x, q).\n"
                                   "g(x, z) :- a(x, y), g(y, z).\n");
  Result<Program> minimized = MinimizeProgram(core);
  ASSERT_TRUE(minimized.ok());
  Program full(symbols);
  for (const Rule& r : minimized->rules()) full.AddRule(r);
  Parser parser(symbols);
  Result<Rule> neg_rule =
      parser.ParseRule("isolated(x) :- node(x), not g(x, x).");
  ASSERT_TRUE(neg_rule.ok());
  full.AddRule(neg_rule.value());

  Database db = testing::ParseDatabaseOrDie(
      symbols, "a(1, 2). a(2, 1). a(3, 4). node(1). node(2). node(3).");
  ASSERT_TRUE(EvaluateStratified(full, &db).ok());
  PredicateId isolated = symbols->LookupPredicate("isolated").value();
  EXPECT_FALSE(db.Contains(isolated, {Value::Int(1)}));
  EXPECT_FALSE(db.Contains(isolated, {Value::Int(2)}));
  EXPECT_TRUE(db.Contains(isolated, {Value::Int(3)}));
}

}  // namespace
}  // namespace datalog
