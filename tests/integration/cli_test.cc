// End-to-end tests of the datalog-opt command-line tool. The binary path
// is injected by CMake as DATALOG_CLI_PATH.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace datalog {
namespace {

#ifndef DATALOG_CLI_PATH
#define DATALOG_CLI_PATH "datalog-opt"
#endif

/// Runs the CLI with `args`, capturing stdout; returns the exit code.
int RunCli(const std::string& args, std::string* stdout_text) {
  std::string command = std::string(DATALOG_CLI_PATH) + " " + args +
                        " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  stdout_text->clear();
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *stdout_text += buffer;
  }
  int status = pclose(pipe);
  return WEXITSTATUS(status);
}

/// Writes `content` to a fresh temp file and returns its path.
std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "/datalog_cli_" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CliTest, MinimizeRemovesRedundantAtom) {
  std::string program = WriteTemp("min.dl",
                                  "g(x, z) :- a(x, z), a(x, q).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n");
  std::string out;
  int code = RunCli("minimize " + program, &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("g(x, z) :- a(x, z).\n"), std::string::npos) << out;
  EXPECT_EQ(out.find("a(x, q)"), std::string::npos) << out;
}

TEST(CliTest, OptimizeFindsExample18) {
  std::string program = WriteTemp("opt.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::string out;
  int code = RunCli("optimize " + program, &out);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(out,
            "g(x, z) :- a(x, z).\n"
            "g(x, z) :- g(x, y), g(y, z).\n");
}

TEST(CliTest, EvalComputesFixpoint) {
  std::string program = WriteTemp("eval.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n");
  std::string facts = WriteTemp("eval_facts.dl", "a(1, 2). a(2, 3).");
  std::string out;
  int code = RunCli("eval " + program + " " + facts, &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("g(1, 3)."), std::string::npos) << out;
}

TEST(CliTest, EvalThreadsFlagMatchesSequentialOutput) {
  std::string program = WriteTemp("evalp.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n");
  std::string facts = WriteTemp("evalp_facts.dl", "a(1, 2). a(2, 3). a(3, 4).");
  std::string sequential;
  ASSERT_EQ(RunCli("eval " + program + " " + facts, &sequential), 0);
  std::string parallel;
  int code =
      RunCli("eval " + program + " " + facts + " --threads 4", &parallel);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(parallel, sequential);
  // The flag position is free, and garbage thread counts are rejected.
  ASSERT_EQ(RunCli("eval --threads 2 " + program + " " + facts, &parallel),
            0);
  EXPECT_EQ(parallel, sequential);
  std::string ignored;
  EXPECT_EQ(RunCli("eval " + program + " " + facts + " --threads bogus",
                   &ignored),
            2);
  EXPECT_EQ(RunCli("eval " + program + " " + facts + " --threads -1",
                   &ignored),
            2);
  EXPECT_EQ(RunCli("eval " + program + " " + facts + " --threads", &ignored),
            2);
}

TEST(CliTest, QueryAnswersBoundQuery) {
  std::string program = WriteTemp("q.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n");
  std::string facts = WriteTemp("q_facts.dl", "a(1, 2). a(2, 3). a(5, 6).");
  std::string out;
  int code = RunCli("query " + program + " " + facts + " 'g(1, x).'", &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("g(1, 2)."), std::string::npos) << out;
  EXPECT_NE(out.find("g(1, 3)."), std::string::npos) << out;
  EXPECT_EQ(out.find("g(5, 6)"), std::string::npos) << out;
}

TEST(CliTest, ContainsReportsWitness) {
  std::string p1 = WriteTemp("c1.dl",
                             "g(x, z) :- a(x, z).\n"
                             "g(x, z) :- a(x, y), g(y, z).\n");
  std::string p2 = WriteTemp("c2.dl",
                             "g(x, z) :- a(x, z).\n"
                             "g(x, z) :- g(x, y), g(y, z).\n");
  std::string out;
  // P2 (doubly recursive) is NOT uniformly contained in P1 (linear).
  int code = RunCli("contains " + p1 + " " + p2, &out);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("NOT uniformly contained"), std::string::npos) << out;
  EXPECT_NE(out.find("counterexample"), std::string::npos) << out;
  // The other direction holds.
  code = RunCli("contains " + p2 + " " + p1, &out);
  EXPECT_EQ(code, 0);
}

TEST(CliTest, ProveRunsTheRecipe) {
  std::string p1 = WriteTemp("pr1.dl",
                             "g(x, z) :- a(x, z).\n"
                             "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::string p2 = WriteTemp("pr2.dl",
                             "g(x, z) :- a(x, z).\n"
                             "g(x, z) :- g(x, y), g(y, z).\n");
  std::string tgds = WriteTemp("pr_t.dl", "g(x, z) -> a(x, w).\n");
  std::string out;
  int code = RunCli("prove " + p1 + " " + p2 + " " + tgds, &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("proved"), std::string::npos) << out;
}

TEST(CliTest, ProveVerboseNarratesChase) {
  std::string p1 = WriteTemp("pv1.dl",
                             "g(x, z) :- a(x, z).\n"
                             "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::string p2 = WriteTemp("pv2.dl",
                             "g(x, z) :- a(x, z).\n"
                             "g(x, z) :- g(x, y), g(y, z).\n");
  std::string tgds = WriteTemp("pv_t.dl", "g(x, z) -> a(x, w).\n");
  std::string out;
  int code = RunCli("prove " + p1 + " " + p2 + " " + tgds + " -v", &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("chasing the frozen body"), std::string::npos) << out;
  EXPECT_NE(out.find("tgd 0"), std::string::npos) << out;
}

TEST(CliTest, MinimizeSatUsesConstraints) {
  std::string program = WriteTemp("ms.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::string tgds = WriteTemp("ms_t.dl", "g(x, z) -> a(x, w).\n");
  std::string out;
  int code = RunCli("minimize-sat " + program + " " + tgds, &out);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(out.find("a(y, w)"), std::string::npos) << out;
}

TEST(CliTest, ExplainPrintsDerivation) {
  std::string program = WriteTemp("ex.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n");
  std::string facts = WriteTemp("ex_facts.dl", "a(1, 2). a(2, 3).");
  std::string out;
  int code = RunCli("explain " + program + " " + facts + " 'g(1, 3)'", &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("[rule"), std::string::npos) << out;
  EXPECT_NE(out.find("[input]"), std::string::npos) << out;
}

TEST(CliTest, PlanShowsPipelineStages) {
  std::string program = WriteTemp("plan.dl",
                                  "g(x, z) :- a(x, z), a(x, q).\n"
                                  "g(x, z) :- a(x, y), g(y, z).\n"
                                  "noise(x) :- b(x).\n");
  std::string out;
  int code = RunCli("plan " + program + " 'g(1, x).'", &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("after relevance restriction (2 of 3 rules)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("after minimization (1 atoms"), std::string::npos) << out;
  EXPECT_NE(out.find("magic-sets rewrite"), std::string::npos) << out;
}

TEST(CliTest, AnalyzeReportsStructure) {
  std::string program = WriteTemp("an.dl",
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- g(x, y), g(y, z).\n");
  std::string out;
  int code = RunCli("analyze " + program, &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("recursive:    yes"), std::string::npos) << out;
  EXPECT_NE(out.find("linear:       no"), std::string::npos) << out;
}

TEST(CliTest, IncrAppliesUpdateScriptAndAnswersQueries) {
  std::string program = WriteTemp("incr.dl",
                                  "path(x, y) :- edge(x, y).\n"
                                  "path(x, z) :- path(x, y), edge(y, z).\n");
  std::string facts = WriteTemp("incr_facts.dl", "edge(1, 2). edge(2, 3).");
  std::string script = WriteTemp("incr.script",
                                 "% extend the chain, then cut the middle\n"
                                 "+edge(3, 4)\n"
                                 "commit\n"
                                 "?path(1, x)\n"
                                 "-edge(2, 3)\n"
                                 "?path(1, x)\n");
  std::string out;
  int code = RunCli("incr " + program + " " + facts + " " + script, &out);
  EXPECT_EQ(code, 0);
  // First query sees 1->{2,3,4}; after -edge(2,3) only path(1,2) is left.
  EXPECT_NE(out.find("path(1, 4).\npath(1, 2).\n"), std::string::npos) << out;
  std::size_t last = out.rfind("path(1, 2).");
  EXPECT_NE(last, std::string::npos);
  EXPECT_EQ(out.find("path(1, 3).", last), std::string::npos) << out;
}

TEST(CliTest, IncrThreadsFlagMatchesSequentialOutput) {
  std::string program = WriteTemp("incr_t.dl",
                                  "path(x, y) :- edge(x, y).\n"
                                  "path(x, z) :- path(x, y), edge(y, z).\n");
  std::string facts = WriteTemp("incr_t_facts.dl",
                                "edge(1, 2). edge(2, 3). edge(3, 1).");
  std::string script = WriteTemp("incr_t.script",
                                 "-edge(2, 3)\n+edge(2, 4)\n?path(x, y)\n");
  std::string seq;
  std::string par;
  EXPECT_EQ(
      RunCli("incr " + program + " " + facts + " " + script, &seq), 0);
  EXPECT_EQ(RunCli("incr --threads 4 " + program + " " + facts + " " + script,
                   &par),
            0);
  EXPECT_EQ(seq, par);
  EXPECT_FALSE(seq.empty());
}

TEST(CliTest, IncrRejectsMalformedScript) {
  std::string program = WriteTemp("incr_bad.dl", "p(x) :- e(x).\n");
  std::string facts = WriteTemp("incr_bad_facts.dl", "e(1).");
  std::string script = WriteTemp("incr_bad.script", "e(2)\n");
  std::string out;
  EXPECT_NE(RunCli("incr " + program + " " + facts + " " + script, &out), 0);
}

TEST(CliTest, BadUsageExitsNonZero) {
  std::string out;
  EXPECT_NE(RunCli("", &out), 0);
  EXPECT_NE(RunCli("frobnicate /nonexistent", &out), 0);
  EXPECT_NE(RunCli("minimize /nonexistent-file.dl", &out), 0);
}

TEST(CliTest, ParseErrorsExitNonZero) {
  std::string program = WriteTemp("bad.dl", "g(x :- a(x).\n");
  std::string out;
  EXPECT_NE(RunCli("minimize " + program, &out), 0);
}

}  // namespace
}  // namespace datalog
