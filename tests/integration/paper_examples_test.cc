// Executable transcript of the paper's 19 worked examples (those not
// already covered unit-by-unit are exercised here end to end). Each test
// names the example it reproduces; together with the unit tests this file
// is the E1-E8 index of EXPERIMENTS.md.

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;
using testing::ParseTgdsOrDie;

TEST(PaperExamples, Example1And2BottomUpComputation) {
  // Example 1: the TC program; Example 2: its output on
  // {A(1,2), A(1,4), A(4,1)}.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 4). a(4, 1).");
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.ToString(),
            "a(1, 2).\n"
            "a(1, 4).\n"
            "a(4, 1).\n"
            "g(1, 1).\n"
            "g(1, 2).\n"
            "g(1, 4).\n"
            "g(4, 1).\n"
            "g(4, 2).\n"
            "g(4, 4).\n");
}

TEST(PaperExamples, Example3InputWithIdbFact) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 4). g(4, 1).");
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  // "the same as the one computed in Example 2, but with the ground atom
  // A(4,1) omitted."
  EXPECT_EQ(db.ToString(),
            "a(1, 2).\n"
            "a(1, 4).\n"
            "g(1, 1).\n"
            "g(1, 2).\n"
            "g(1, 4).\n"
            "g(4, 1).\n"
            "g(4, 2).\n"
            "g(4, 4).\n");
}

TEST(PaperExamples, Example4EquivalentButNotUniformly) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- a(x, y), g(y, z).\n");
  // P2 ⊆ᵘ P1 but not conversely.
  EXPECT_TRUE(UniformlyContains(p1, p2).value());
  EXPECT_FALSE(UniformlyContains(p2, p1).value());
  // The separating input of Example 4: G-facts only, no A.
  Database d1 = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  Database d2 = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(d1.Contains(g, {Value::Int(1), Value::Int(3)}));  // closure
  EXPECT_EQ(d2.NumFacts(), 2u);  // P2's output equals its input
}

TEST(PaperExamples, Example5MixedVocabulary) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n"
                                 "a(x, z) :- a(x, y), g(y, z).\n");
  EXPECT_TRUE(UniformlyContains(p2, p1).value());
}

TEST(PaperExamples, Example6ChaseTranscript) {
  // Example 6 walks the chase for both directions; the containment calls
  // reproduce it.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  Rule r1 = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  Rule r2 = ParseRuleOrDie(symbols, "g(x, z) :- a(x, y), g(y, z).");
  Rule s = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  EXPECT_TRUE(UniformlyContainsRule(p1, r1).value());
  EXPECT_TRUE(UniformlyContainsRule(p1, r2).value());
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- a(x, y), g(y, z).\n");
  EXPECT_FALSE(UniformlyContainsRule(p2, s).value());
}

TEST(PaperExamples, Example7And8MinimizationUnderUniformEquivalence) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(ToString(minimized.value(), *symbols),
            "g(x, y, z) :- g(x, w, z), a(w, z), a(z, z), a(z, y).");
}

TEST(PaperExamples, Example9TgdSatisfaction) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(1, 4). a(4, 1)."
      "g(1, 2). g(1, 4). g(4, 1). g(1, 1). g(4, 4). g(4, 2).");
  EXPECT_FALSE(SatisfiesTgd(
      db, testing::ParseTgdOrDie(symbols, "g(x, y) -> a(y, z), a(z, x).")));
  EXPECT_TRUE(SatisfiesTgd(
      db, testing::ParseTgdOrDie(symbols, "g(x, y) -> g(x, z), a(z, y).")));
}

TEST(PaperExamples, Example10FullTgdEqualsTwoRules) {
  auto symbols = MakeSymbols();
  Tgd tgd = testing::ParseTgdOrDie(
      symbols, "a(x, y, z), b(w, y, v) -> a(x, y, v), t(w, y, z).");
  ASSERT_TRUE(tgd.IsFull());
  Database via_tgd = ParseDatabaseOrDie(symbols, "a(1, 2, 3). b(4, 2, 5).");
  NullPool pool;
  while (ApplyTgdRound(tgd, &via_tgd, &pool) > 0) {
  }
  Program rules = ParseProgramOrDie(
      symbols,
      "a(x, y, v) :- a(x, y, z), b(w, y, v).\n"
      "t(w, y, z) :- a(x, y, z), b(w, y, v).\n");
  Database via_rules = ParseDatabaseOrDie(symbols, "a(1, 2, 3). b(4, 2, 5).");
  ASSERT_TRUE(EvaluateSemiNaive(rules, &via_rules).ok());
  EXPECT_EQ(via_tgd, via_rules) << via_tgd.ToString();
  EXPECT_EQ(pool.allocated(), 0);
}

TEST(PaperExamples, Example11ModelContainmentWithTgd) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  EXPECT_TRUE(UniformlyContains(p2, p1).value());  // P1 ⊆ᵘ P2
  EXPECT_EQ(ModelContainment(p1, tgds, p2).value(), ProofOutcome::kProved);
}

TEST(PaperExamples, Example12NonRecursiveApplication) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database d = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3). g(3, 4).");
  Database pn(symbols);
  ASSERT_TRUE(ApplyOnce(p, d, &pn, nullptr).ok());
  EXPECT_EQ(pn.ToString(), "g(1, 2).\ng(2, 4).\n");
}

TEST(PaperExamples, Examples13To16Preservation) {
  auto symbols = MakeSymbols();
  // Example 13 (single recursive rule) and 14 (whole program).
  Program p13 = ParseProgramOrDie(
      symbols, "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> t13 = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  EXPECT_EQ(PreservesNonRecursively(p13, t13).value(), ProofOutcome::kProved);

  Program p14 = ParseProgramOrDie(symbols,
                                  "g(x, z) :- a(x, z).\n"
                                  "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  EXPECT_EQ(PreservesNonRecursively(p14, t13).value(), ProofOutcome::kProved);

  // Example 15: multi-atom LHS, four combinations.
  std::vector<Tgd> t15 =
      ParseTgdsOrDie(symbols, "g(x, y), g(y, z) -> a(y, w).");
  EXPECT_EQ(PreservesNonRecursively(p13, t15).value(), ProofOutcome::kProved);

  // Example 16.
  Program p16 = ParseProgramOrDie(
      symbols, "g2(x, z) :- a(x, y), g2(y, z), g2(y, w), c(w).\n");
  std::vector<Tgd> t16 =
      ParseTgdsOrDie(symbols, "g2(y, z) -> g2(y, w), c(w).");
  EXPECT_EQ(PreservesNonRecursively(p16, t16).value(), ProofOutcome::kProved);
}

TEST(PaperExamples, Example17PreliminaryDb) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Rule> init = InitializationRules(p);
  ASSERT_EQ(init.size(), 1u);
  Program pi(symbols);
  pi.AddRule(init[0]);
  Database d = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Database preliminary(symbols);
  preliminary.UnionWith(d);
  ASSERT_TRUE(ApplyOnce(pi, d, &preliminary, nullptr).ok());
  Database expected = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(2, 3). a(3, 4). g(1, 2). g(2, 3). g(3, 4).");
  EXPECT_EQ(preliminary, expected);
}

TEST(PaperExamples, Example18EquivalenceOptimization) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<EquivalenceProof> proof = ProveEquivalentWithTgds(p1, p2, tgds);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->overall, ProofOutcome::kProved);
}

TEST(PaperExamples, Example19HeuristicOptimization) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z), c(z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(result->program),
            "g(x, z) :- a(x, z), c(z).\n"
            "g(x, z) :- a(x, y), g(y, z).\n");
  // Both atoms G(y,w) and C(w) are gone; the optimizer may remove them in
  // one step (witness G(y,z) -> G(y,w) & C(w), as in the paper) or in two
  // smaller proved steps.
  std::size_t atoms_removed = 0;
  for (const EquivalenceRemoval& removal : result->removals) {
    atoms_removed += removal.removed.size();
  }
  EXPECT_EQ(atoms_removed, 2u);
}

}  // namespace
}  // namespace datalog
