#include "util/interning.h"

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(InterningTest, FirstInternIsZero) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.size(), 1);
}

TEST(InterningTest, RepeatedInternReturnsSameId) {
  StringInterner interner;
  int32_t a = interner.Intern("alpha");
  int32_t b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Intern("beta"), b);
  EXPECT_EQ(interner.size(), 2);
}

TEST(InterningTest, RoundTrip) {
  StringInterner interner;
  int32_t id = interner.Intern("gamma");
  EXPECT_EQ(interner.ToString(id), "gamma");
}

TEST(InterningTest, LookupMissingReturnsMinusOne) {
  StringInterner interner;
  EXPECT_EQ(interner.Lookup("nope"), -1);
  interner.Intern("yes");
  EXPECT_EQ(interner.Lookup("yes"), 0);
  EXPECT_EQ(interner.Lookup("nope"), -1);
}

TEST(InterningTest, EmptyStringIsInternable) {
  StringInterner interner;
  int32_t id = interner.Intern("");
  EXPECT_EQ(interner.ToString(id), "");
  EXPECT_EQ(interner.Lookup(""), id);
}

TEST(InterningTest, ManyStrings) {
  StringInterner interner;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Intern("s" + std::to_string(i)), i);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.ToString(i), "s" + std::to_string(i));
  }
}

}  // namespace
}  // namespace datalog
