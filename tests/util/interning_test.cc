#include "util/interning.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(InterningTest, FirstInternIsZero) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.size(), 1);
}

TEST(InterningTest, RepeatedInternReturnsSameId) {
  StringInterner interner;
  int32_t a = interner.Intern("alpha");
  int32_t b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Intern("beta"), b);
  EXPECT_EQ(interner.size(), 2);
}

TEST(InterningTest, RoundTrip) {
  StringInterner interner;
  int32_t id = interner.Intern("gamma");
  EXPECT_EQ(interner.ToString(id), "gamma");
}

TEST(InterningTest, LookupMissingReturnsMinusOne) {
  StringInterner interner;
  EXPECT_EQ(interner.Lookup("nope"), -1);
  interner.Intern("yes");
  EXPECT_EQ(interner.Lookup("yes"), 0);
  EXPECT_EQ(interner.Lookup("nope"), -1);
}

TEST(InterningTest, EmptyStringIsInternable) {
  StringInterner interner;
  int32_t id = interner.Intern("");
  EXPECT_EQ(interner.ToString(id), "");
  EXPECT_EQ(interner.Lookup(""), id);
}

TEST(InterningTest, ManyStrings) {
  StringInterner interner;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Intern("s" + std::to_string(i)), i);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.ToString(i), "s" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// ValueDictionary property tests. The dictionary is a process-wide
// singleton (the columnar storage backend depends on one id space shared
// by every relation), so these tests assert relative invariants --
// round-trips, stability, density -- rather than absolute id values.

TEST(ValueDictionaryTest, InternResolveRoundTrip) {
  ValueDictionary& dict = ValueDictionary::Global();
  for (int i = 0; i < 500; ++i) {
    const Value v = Value::Int(1000000 + i);
    const std::uint32_t id = dict.Intern(v);
    ASSERT_NE(id, ValueDictionary::kInvalidId);
    EXPECT_EQ(dict.Resolve(id), v);
    EXPECT_EQ(dict.LookupId(v), id);
  }
}

TEST(ValueDictionaryTest, InternIsIdempotent) {
  ValueDictionary& dict = ValueDictionary::Global();
  const Value v = Value::Symbol(424242);
  const std::uint32_t first = dict.Intern(v);
  const std::uint32_t size_after_first = dict.size();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dict.Intern(v), first);
  }
  EXPECT_EQ(dict.size(), size_after_first);  // re-interning adds nothing
}

TEST(ValueDictionaryTest, DistinctKindsGetDistinctIds) {
  ValueDictionary& dict = ValueDictionary::Global();
  const std::uint32_t a = dict.Intern(Value::Int(77));
  const std::uint32_t b = dict.Intern(Value::Symbol(77));
  const std::uint32_t c = dict.Intern(Value::Frozen(77));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(ValueDictionaryTest, IdsAreDense) {
  // Every id in [0, size()) resolves, and a batch of novel values gets
  // consecutive ids: the dictionary never leaves holes, which is what
  // lets callers size id-addressed arrays by size().
  ValueDictionary& dict = ValueDictionary::Global();
  const std::uint32_t before = dict.size();
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(dict.Intern(Value::Int(2000000 + i)));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], before + static_cast<std::uint32_t>(i));
  }
  for (std::uint32_t id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(dict.LookupId(dict.Resolve(id)), id);
  }
}

TEST(ValueDictionaryTest, LookupMissingReturnsInvalid) {
  ValueDictionary& dict = ValueDictionary::Global();
  // A value from a corner of the space no test interns.
  EXPECT_EQ(dict.LookupId(Value::Null(1999999999)),
            ValueDictionary::kInvalidId);
}

TEST(ValueDictionaryTest, InternRowLookupRowRoundTrip) {
  ValueDictionary& dict = ValueDictionary::Global();
  const std::vector<Value> row = {Value::Int(3000001), Value::Symbol(3000002),
                                  Value::Int(3000003)};
  std::vector<std::uint32_t> ids;
  dict.InternRow(row, &ids);
  ASSERT_EQ(ids.size(), row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(dict.Resolve(ids[i]), row[i]);
  }
  std::vector<std::uint32_t> looked_up;
  EXPECT_TRUE(dict.LookupRow(row, &looked_up));
  EXPECT_EQ(looked_up, ids);
  const std::vector<Value> unknown = {Value::Int(3000001),
                                      Value::Null(1999999998)};
  EXPECT_FALSE(dict.LookupRow(unknown, &looked_up));
}

TEST(ValueDictionaryTest, ConcurrentInternAndResolveAgree) {
  // Hammer the dictionary from several writer threads interning
  // overlapping value ranges while readers resolve everything visible
  // through size(). Under TSan this doubles as the data-race check for
  // the lock-free resolve path; under any build it checks id stability:
  // the same value always gets the same id on every thread.
  ValueDictionary& dict = ValueDictionary::Global();
  constexpr int kThreads = 4;
  constexpr int kValues = 2000;
  std::vector<std::vector<std::uint32_t>> ids(
      kThreads, std::vector<std::uint32_t>(kValues));
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  std::atomic<bool> stop{false};
  threads.emplace_back([&dict, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t n = dict.size();
      for (std::uint32_t id = n > 64 ? n - 64 : 0; id < n; ++id) {
        (void)dict.Resolve(id);  // must never tear or crash mid-publish
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, &ids, t] {
      for (int i = 0; i < kValues; ++i) {
        ids[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            dict.Intern(Value::Int(4000000 + i));
      }
    });
  }
  for (std::size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[0].join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
  for (int i = 0; i < kValues; ++i) {
    EXPECT_EQ(dict.Resolve(ids[0][static_cast<std::size_t>(i)]),
              Value::Int(4000000 + i));
  }
}

}  // namespace
}  // namespace datalog
