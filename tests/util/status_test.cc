#include "util/status.h"

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, NotFound) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
}

TEST(StatusTest, ResourceExhausted) {
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, Internal) {
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::InvalidArgument("original");
  Status copy = s;
  EXPECT_EQ(copy.message(), "original");
  EXPECT_EQ(copy.code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  DATALOG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace datalog
