#include "util/string_util.h"

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(StringUtilTest, JoinEmpty) { EXPECT_EQ(Join({}, ", "), ""); }

TEST(StringUtilTest, JoinSingle) { EXPECT_EQ(Join({"a"}, ", "), "a"); }

TEST(StringUtilTest, JoinMany) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"x", "y"}, ""), "xy");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("magic_g_bf", "magic_"));
  EXPECT_FALSE(StartsWith("g_bf", "magic_"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

}  // namespace
}  // namespace datalog
