#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsTasksOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::thread::id runner;
  pool.Submit([&runner] { runner = std::this_thread::get_id(); });
  pool.Wait();
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < 5; ++i) {
      pool.Submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[static_cast<std::size_t>(i)] = i; });
  }
  pool.Wait();
  int sum = 0;
  for (int v : results) sum += v;
  EXPECT_EQ(sum, 63 * 64 / 2);
}

}  // namespace
}  // namespace datalog
