#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsTasksOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::thread::id runner;
  pool.Submit([&runner] { runner = std::this_thread::get_id(); });
  pool.Wait();
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < 5; ++i) {
      pool.Submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[static_cast<std::size_t>(i)] = i; });
  }
  pool.Wait();
  int sum = 0;
  for (int v : results) sum += v;
  EXPECT_EQ(sum, 63 * 64 / 2);
}

TEST(ThreadPoolShutdownTest, DrainRunsEveryQueuedTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(pool.Submit(
        [&count] { count.fetch_add(1, std::memory_order_relaxed); }));
  }
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);
  EXPECT_EQ(count.load(), 200);
  EXPECT_TRUE(pool.shutdown());
}

TEST(ThreadPoolShutdownTest, ShutdownWhileBusyWaitsForRunningTasks) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  // Occupy both workers with tasks that block until released, plus a
  // queued backlog behind them.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release, &finished] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (int i = 0; i < 10; ++i) {
    pool.Submit(
        [&finished] { finished.fetch_add(1, std::memory_order_relaxed); });
  }
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true, std::memory_order_release);
  });
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);  // must not return early
  releaser.join();
  EXPECT_EQ(finished.load(), 12);
}

TEST(ThreadPoolShutdownTest, RejectDropsQueuedButFinishesRunningTasks) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.Submit([&started, &release, &ran] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  // Once the single worker is inside the blocking task, everything below
  // is guaranteed to still be queued when Shutdown(kReject) runs.
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // These sit in the queue behind the blocked task and must be discarded.
  for (int i = 0; i < 25; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true, std::memory_order_release);
  });
  pool.Shutdown(ThreadPool::DrainPolicy::kReject);
  releaser.join();
  // The running task always completes; the queued 25 never start.
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> count{0};
  EXPECT_FALSE(pool.Submit(
      [&count] { count.fetch_add(1, std::memory_order_relaxed); }));
  EXPECT_EQ(count.load(), 0);
  EXPECT_TRUE(pool.shutdown());
}

TEST(ThreadPoolShutdownTest, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);   // no-op
  pool.Shutdown(ThreadPool::DrainPolicy::kReject);  // first policy wins
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolShutdownTest, ConcurrentShutdownCallsAllReturn) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back(
        [&pool] { pool.Shutdown(ThreadPool::DrainPolicy::kDrain); });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolShutdownTest, ZeroWorkerPoolShutsDownCleanly) {
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);  // drains on this thread
  EXPECT_EQ(count.load(), 1);
  EXPECT_FALSE(
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); }));
}

TEST(ThreadPoolShutdownTest, DestructorAfterShutdownIsSafe) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();
    // Destructor runs Shutdown(kDrain) again; must be a no-op.
  }
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace datalog
