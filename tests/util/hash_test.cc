#include "util/hash.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(HashTest, CombineIsOrderSensitive) {
  std::size_t ab = 0, ba = 0;
  HashCombine(ab, 1);
  HashCombine(ab, 2);
  HashCombine(ba, 2);
  HashCombine(ba, 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, CombineChangesSeed) {
  std::size_t seed = 42;
  std::size_t before = seed;
  HashCombine(seed, 0);
  EXPECT_NE(seed, before);  // even combining zero must perturb
}

TEST(HashTest, RangeMatchesManualCombine) {
  std::vector<int> values{3, 1, 4, 1, 5};
  std::size_t manual = 0;
  for (int v : values) {
    HashCombine(manual, std::hash<int>{}(v));
  }
  EXPECT_EQ(HashRange(values.begin(), values.end()), manual);
}

TEST(HashTest, RangeDistinguishesPrefixes) {
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{1, 2};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

TEST(HashTest, WorksWithStrings) {
  std::vector<std::string> words{"frozen", "null"};
  std::size_t h = HashRange(words.begin(), words.end());
  EXPECT_NE(h, 0u);
}

}  // namespace
}  // namespace datalog
