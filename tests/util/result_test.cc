#include "util/result.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok(3);
  Result<int> err(Status::Internal("boom"));
  EXPECT_EQ(ok.value_or(9), 3);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DATALOG_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnSuccess) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Quarter(6);  // 6/2 = 3, then odd
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace datalog
