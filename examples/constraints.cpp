// Optimization relative to database constraints (Section VIII / the
// abstract's "case in which the database satisfies some constraints").
//
// Scenario: an employee database with inclusion dependencies -- every
// managed employee is assigned to some department, and the invariant is
// declared for the derived chain relation too:
//
//   manages(m, e) -> dept(e, d)          (embedded tgds)
//   chain(m, e)   -> dept(e, d)
//
// A machine-generated reachability query re-checks the dependency in its
// recursive rule. Relative to SAT(T) that check is redundant; absolutely
// it is not.
//
//   $ ./constraints

#include <cstdio>
#include <memory>

#include "datalog.h"

int main() {
  using namespace datalog;

  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);

  Program program =
      parser
          .ParseProgram(
              "chain(m, e) :- manages(m, e).\n"
              "chain(m, e) :- chain(m, x), chain(x, e), dept(x, d).\n")
          .value();
  std::vector<Tgd> constraints =
      parser
          .ParseTgds(
              "manages(m, e) -> dept(e, d).\n"
              "chain(m, e) -> dept(e, d).")
          .value();

  std::printf("program:\n%s\n", ToString(program).c_str());
  for (const Tgd& tgd : constraints) {
    std::printf("constraint: %s\n", ToString(tgd, *symbols).c_str());
  }
  std::printf("\n");

  // Absolutely (over ALL databases), dept(x, d) is not redundant:
  MinimizeReport absolute;
  Program abs_min = MinimizeProgram(program, &absolute).value();
  std::printf("Fig. 2 without constraints removes %zu atoms.\n",
              absolute.atoms_removed);

  // Relative to SAT(T) it is:
  MinimizeReport relative;
  Program rel_min =
      MinimizeProgramUnderConstraints(program, constraints, {}, &relative)
          .value();
  std::printf("Fig. 2 relative to SAT(T) removes %zu atom(s):\n%s\n",
              relative.atoms_removed, ToString(rel_min).c_str());

  // Sanity: on a database satisfying the constraint the two programs
  // agree.
  Database db1 = ParseDatabase(symbols,
                               "manages(1, 2). manages(2, 3). manages(3, 4)."
                               "dept(2, 10). dept(3, 10). dept(4, 20).")
                     .value();
  if (!SatisfiesAll(db1, constraints)) {
    std::printf("unexpected: EDB violates the constraint\n");
    return 1;
  }
  Database db2(symbols);
  db2.UnionWith(db1);
  EvalStats s1 = EvaluateSemiNaive(program, &db1).value();
  EvalStats s2 = EvaluateSemiNaive(rel_min, &db2).value();
  std::printf("outputs agree on a SAT(T) database: %s\n",
              db1 == db2 ? "yes" : "NO");
  std::printf("joins: %llu (original) vs %llu (optimized)\n",
              static_cast<unsigned long long>(s1.match.substitutions),
              static_cast<unsigned long long>(s2.match.substitutions));

  // The relative notion really is weaker: both directions of the
  // SAT(T)-relative uniform equivalence are provable...
  ProofOutcome relative_eq =
      UniformEquivalenceUnderConstraints(program, rel_min, constraints)
          .value();
  // ...while absolute uniform equivalence fails.
  bool absolute_eq = UniformlyEquivalent(program, rel_min).value();
  std::printf("SAT(T)-uniformly equivalent: %s; uniformly equivalent: %s\n",
              std::string(ToString(relative_eq)).c_str(),
              absolute_eq ? "yes" : "no");
  return 0;
}
