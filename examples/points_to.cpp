// Datalog as a program-analysis engine: Andersen-style (inclusion-based)
// points-to analysis, the workload that made bottom-up Datalog engines
// mainstream in static analysis. Shows the optimizer cleaning up a
// generated ruleset and magic sets answering a targeted "what does v
// point to?" query without computing the whole analysis.
//
//   $ ./points_to

#include <cstdio>
#include <memory>

#include "datalog.h"

int main() {
  using namespace datalog;

  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);

  // EDB predicates, one per statement form:
  //   addr(v, h)   v = &h        copy(d, s)   d = s
  //   load(d, s)   d = *s        store(d, s)  *d = s
  //
  // The generated rules contain a duplicated-with-renaming atom (the kind
  // a template-based rule generator emits), which Fig. 2 removes.
  Program analysis =
      parser
          .ParseProgram(
              "pts(v, h) :- addr(v, h).\n"
              "pts(d, h) :- copy(d, s), pts(s, h), pts(s, h2).\n"
              "pts(d, h) :- load(d, s), pts(s, p), pts(p, h).\n"
              "pts(q, h) :- store(d, s), pts(d, q), pts(s, h).\n")
          .value();
  std::printf("generated analysis:\n%s\n", ToString(analysis).c_str());

  MinimizeReport report;
  Program minimized = MinimizeProgram(analysis, &report).value();
  std::printf("minimized (%zu redundant atoms removed):\n%s\n",
              report.atoms_removed, ToString(minimized).c_str());

  // A small program to analyze:
  //   a = &o1; b = &o2; p = a; *p = b; c = *a;
  Database edb = ParseDatabase(symbols,
                               "addr('a', 'o1')."
                               "addr('b', 'o2')."
                               "copy('p', 'a')."
                               "store('p', 'b')."
                               "load('c', 'a').")
                     .value();

  Database db = edb;
  EvalStats stats = EvaluateSemiNaive(minimized, &db).value();
  PredicateId pts = symbols->LookupPredicate("pts").value();
  std::printf("full analysis: %zu points-to facts (%llu joins)\n",
              db.relation(pts).size(),
              static_cast<unsigned long long>(stats.match.substitutions));
  for (const Tuple& t : db.relation(pts).rows()) {
    std::printf("  %s -> %s\n", ToString(t[0], *symbols).c_str(),
                ToString(t[1], *symbols).c_str());
  }

  // Targeted query via magic sets: what may 'c' point to?
  Atom query = parser.ParseQuery("?- pts('c', h).").value();
  std::vector<Tuple> answers =
      AnswerQuery(minimized, edb, query, EvalMethod::kMagicSemiNaive).value();
  std::printf("\npts('c', h) via magic sets:\n");
  for (const Tuple& t : answers) {
    std::printf("  c -> %s\n", ToString(t[1], *symbols).c_str());
  }

  // Why does c point to o2? Ask for the derivation.
  if (!answers.empty()) {
    std::int32_t o2 = symbols->InternSymbol("o2");
    Result<Derivation> why = ExplainFact(
        minimized, edb, pts,
        {Value::Symbol(symbols->InternSymbol("c")), Value::Symbol(o2)});
    if (why.ok()) {
      std::printf("\nderivation of pts('c', 'o2'):\n%s",
                  ToString(*why, *symbols).c_str());
    }
  }
  return 0;
}
