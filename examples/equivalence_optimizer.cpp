// The Section X/XI pipeline on the paper's Examples 18 and 19: heuristic
// tgd discovery, the three-part proof (model containment, preservation,
// preliminary DB), and the resulting atom removals -- removals that are
// sound under equivalence but NOT under uniform equivalence.
//
//   $ ./equivalence_optimizer

#include <cstdio>
#include <memory>

#include "datalog.h"

namespace {

void Optimize(const char* title, const char* text) {
  using namespace datalog;
  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);
  Program program = parser.ParseProgram(text).value();
  std::printf("=== %s ===\n%s", title, ToString(program).c_str());

  // First pass: uniform-equivalence minimization (Fig. 2) finds nothing
  // here -- these atoms are only redundant under ordinary equivalence.
  MinimizeReport report;
  Program uniform = MinimizeProgram(program, &report).value();
  std::printf("Fig. 2 removes: %zu atoms, %zu rules\n", report.atoms_removed,
              report.rules_removed);

  // Second pass: the Section XI heuristic.
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(uniform);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("Section XI tries %zu candidate tgds and removes:\n",
              result->candidates_tried);
  for (const EquivalenceRemoval& removal : result->removals) {
    std::printf("  from rule %zu:", removal.rule_index);
    for (const Atom& atom : removal.removed) {
      std::printf(" %s", ToString(atom, *symbols).c_str());
    }
    std::printf("   (witness tgd: %s)\n",
                ToString(removal.witness, *symbols).c_str());
  }
  std::printf("optimized program:\n%s\n", ToString(result->program).c_str());
}

}  // namespace

int main() {
  Optimize("Example 18: guarded transitive closure",
           "g(x, z) :- a(x, z).\n"
           "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Optimize("Example 19: guarded reachability with a C-filter",
           "g(x, z) :- a(x, z), c(z).\n"
           "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  return 0;
}
