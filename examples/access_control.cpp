// Role-based access control as Datalog: recursive role inheritance,
// permission propagation, explicit deny via stratified negation, and a
// magic-sets "may user U read R?" check. A generated policy compiler
// tends to emit duplicated guard atoms -- the minimizer cleans them up
// before the policy is installed.
//
//   $ ./access_control

#include <cstdio>
#include <memory>

#include "datalog.h"

int main() {
  using namespace datalog;

  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);

  Program policy =
      parser
          .ParseProgram(
              // role(u, r): user u holds role r (directly).
              // parent(r1, r2): role r1 inherits everything r2 has.
              "holds(u, r) :- role(u, r), role(u, r2).\n"  // generated dup
              "holds(u, r) :- holds(u, r1), parent(r1, r).\n"
              "may(u, p, o) :- holds(u, r), grant(r, p, o).\n"
              "allowed(u, p, o) :- may(u, p, o), not deny(u, o).\n")
          .value();
  std::printf("generated policy:\n%s\n", ToString(policy).c_str());

  MinimizeReport report;
  Program installed = MinimizeStratifiedProgram(policy, &report).value();
  std::printf("installed policy (%zu redundant atoms removed):\n%s\n",
              report.atoms_removed, ToString(installed).c_str());

  Database edb = ParseDatabase(symbols,
                               "role('ann', 'admin')."
                               "role('bob', 'dev')."
                               "role('cao', 'intern')."
                               "parent('admin', 'dev')."
                               "parent('dev', 'reader')."
                               "parent('intern', 'reader')."
                               "grant('reader', 'read', 'wiki')."
                               "grant('dev', 'write', 'repo')."
                               "grant('admin', 'admin', 'repo')."
                               "deny('cao', 'wiki').")
                     .value();

  Database db = edb;
  EvaluateStratified(installed, &db).value();
  PredicateId allowed = symbols->LookupPredicate("allowed").value();
  std::printf("effective permissions:\n");
  for (const Tuple& t : db.relation(allowed).rows()) {
    std::printf("  %s may %s %s\n", ToString(t[0], *symbols).c_str(),
                ToString(t[1], *symbols).c_str(),
                ToString(t[2], *symbols).c_str());
  }

  // A point lookup via magic sets runs on the positive core (the deny
  // check is re-applied on the result).
  Program core(symbols);
  for (const Rule& rule : installed.rules()) {
    if (rule.IsPositive()) core.AddRule(rule);
  }
  Atom query = parser.ParseQuery("?- may('bob', 'read', 'wiki').").value();
  std::vector<Tuple> hits =
      AnswerQuery(core, edb, query, EvalMethod::kMagicSemiNaive).value();
  PredicateId deny = symbols->LookupPredicate("deny").value();
  bool denied = edb.Contains(
      deny, {Value::Symbol(symbols->InternSymbol("bob")),
             Value::Symbol(symbols->InternSymbol("wiki"))});
  std::printf("\nbob read wiki? %s\n",
              (!hits.empty() && !denied) ? "ALLOW" : "DENY");

  // Why is bob allowed to read the wiki? Walk the derivation.
  PredicateId may = symbols->LookupPredicate("may").value();
  Result<Derivation> why = ExplainFact(
      core, edb, may,
      {Value::Symbol(symbols->InternSymbol("bob")),
       Value::Symbol(symbols->InternSymbol("read")),
       Value::Symbol(symbols->InternSymbol("wiki"))});
  if (why.ok()) {
    std::printf("\nbecause:\n%s", ToString(*why, *symbols).c_str());
  }
  return 0;
}
