// A realistic deductive-database scenario: bill-of-materials (the classic
// recursive-query workload the 1980s Datalog literature motivates).
// Subparts, cost rollup via stratified negation (basic vs assembled
// parts), a magic-sets bound query, and the optimizer cleaning up a
// machine-generated program with redundant guards.
//
//   $ ./bill_of_materials

#include <cstdio>
#include <memory>

#include "datalog.h"

int main() {
  using namespace datalog;

  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);

  // component(P, C): part P directly contains part C.
  // basic(P): P is purchased, not assembled.
  // A generated ruleset -- note the redundant duplicated atoms a query
  // generator might emit.
  Program program =
      parser
          .ParseProgram(
              "subpart(p, c) :- component(p, c), component(p, d).\n"
              "subpart(p, c) :- component(p, q), subpart(q, c).\n"
              "assembled(p) :- component(p, c).\n"
              "basicpart(p) :- part(p), not assembled(p).\n"
              "uses_basic(p, c) :- subpart(p, c), basicpart(c).\n")
          .value();
  std::printf("generated program:\n%s\n", ToString(program).c_str());

  // Minimize the positive core; the negation rules ride along untouched
  // (MinimizeStratifiedProgram handles the split and its soundness
  // argument -- see core/minimize.h).
  MinimizeReport report;
  Program optimized = MinimizeStratifiedProgram(program, &report).value();
  std::printf("after Fig. 2 minimization (%zu atoms removed):\n%s\n",
              report.atoms_removed, ToString(optimized).c_str());

  // The bound query below runs on the positive core only.
  Program minimized_core(symbols);
  for (const Rule& rule : optimized.rules()) {
    if (rule.IsPositive()) minimized_core.AddRule(rule);
  }

  // A small product catalog.
  Database edb = ParseDatabase(symbols,
                               "component('bike', 'frame')."
                               "component('bike', 'wheel')."
                               "component('wheel', 'rim')."
                               "component('wheel', 'spoke')."
                               "component('wheel', 'hub')."
                               "component('hub', 'axle')."
                               "component('hub', 'bearing')."
                               "part('bike'). part('frame'). part('wheel')."
                               "part('rim'). part('spoke'). part('hub')."
                               "part('axle'). part('bearing').")
                     .value();

  Database db = edb;
  EvalStats stats = EvaluateStratified(optimized, &db).value();
  std::printf("stratified fixpoint: %llu facts derived in %d rounds\n",
              static_cast<unsigned long long>(stats.facts_derived),
              stats.iterations);

  PredicateId uses_basic = symbols->LookupPredicate("uses_basic").value();
  std::printf("\nbasic parts used by each assembly:\n");
  for (const Tuple& t : db.relation(uses_basic).rows()) {
    std::printf("  %s needs %s\n", ToString(t[0], *symbols).c_str(),
                ToString(t[1], *symbols).c_str());
  }

  // Bound query on the positive core via magic sets: which subparts does
  // the wheel transitively contain?
  Atom query = parser.ParseQuery("?- subpart('wheel', x).").value();
  std::vector<Tuple> answers =
      AnswerQuery(minimized_core, edb, query, EvalMethod::kMagicSemiNaive)
          .value();
  std::printf("\nsubpart('wheel', x) via magic sets: %zu answers\n",
              answers.size());
  for (const Tuple& t : answers) {
    std::printf("  %s\n", ToString(t[1], *symbols).c_str());
  }
  return 0;
}
