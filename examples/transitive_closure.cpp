// Walks the paper's running transitive-closure example (Examples 1-6):
// the two TC programs, their evaluation, the equivalence vs uniform
// equivalence gap, and the chase transcript of the uniform containment
// test.
//
//   $ ./transitive_closure

#include <cstdio>
#include <memory>

#include "datalog.h"

namespace {

void Show(const char* title, const std::string& body) {
  std::printf("=== %s ===\n%s\n", title, body.c_str());
}

}  // namespace

int main() {
  using namespace datalog;

  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);

  // Example 1: the doubly recursive TC program P1.
  Program p1 = parser
                   .ParseProgram(
                       "g(x, z) :- a(x, z).\n"
                       "g(x, z) :- g(x, y), g(y, z).\n")
                   .value();
  // Example 4: the linear TC program P2.
  Program p2 = parser
                   .ParseProgram(
                       "g(x, z) :- a(x, z).\n"
                       "g(x, z) :- a(x, y), g(y, z).\n")
                   .value();
  Show("P1 (Example 1)", ToString(p1));
  Show("P2 (Example 4)", ToString(p2));

  // Example 2: bottom-up computation.
  Database db = ParseDatabase(symbols, "a(1, 2). a(1, 4). a(4, 1).").value();
  EvaluateSemiNaive(p1, &db).value();
  Show("P1 on {A(1,2), A(1,4), A(4,1)} (Example 2)", db.ToString());

  // Example 3: the input may include IDB facts.
  Database db3 = ParseDatabase(symbols, "a(1, 2). a(1, 4). g(4, 1).").value();
  EvaluateSemiNaive(p1, &db3).value();
  Show("P1 on {A(1,2), A(1,4), G(4,1)} (Example 3)", db3.ToString());

  // Examples 4/6: P2 is uniformly contained in P1 but not conversely.
  bool p2_in_p1 = UniformlyContains(p1, p2).value();
  bool p1_in_p2 = UniformlyContains(p2, p1).value();
  std::printf("P2 subseteq^u P1: %s\n", p2_in_p1 ? "yes" : "no");
  std::printf("P1 subseteq^u P2: %s  (Example 6: the doubly recursive rule "
              "is the witness)\n\n",
              p1_in_p2 ? "yes" : "no");

  // The separating input of Example 4: a G-only database.
  Database g_only_1 = ParseDatabase(symbols, "g(1, 2). g(2, 3).").value();
  Database g_only_2 = ParseDatabase(symbols, "g(1, 2). g(2, 3).").value();
  EvaluateSemiNaive(p1, &g_only_1).value();
  EvaluateSemiNaive(p2, &g_only_2).value();
  Show("P1 on {G(1,2), G(2,3)} -- computes the closure of G", g_only_1.ToString());
  Show("P2 on {G(1,2), G(2,3)} -- output equals input", g_only_2.ToString());

  // Yet on every plain EDB the two agree (they are equivalent).
  Database e1 = ParseDatabase(symbols, "a(1, 2). a(2, 3). a(3, 1).").value();
  Database e2 = ParseDatabase(symbols, "a(1, 2). a(2, 3). a(3, 1).").value();
  EvaluateSemiNaive(p1, &e1).value();
  EvaluateSemiNaive(p2, &e2).value();
  std::printf("P1 and P2 agree on the EDB {A(1,2), A(2,3), A(3,1)}: %s\n",
              e1 == e2 ? "yes" : "no");
  std::printf("=> equivalent, but NOT uniformly equivalent (Example 4).\n");
  return 0;
}
