// Quickstart: parse a program, minimize it under uniform equivalence
// (Fig. 2), evaluate it bottom-up, and answer a query.
//
//   $ ./quickstart

#include <cstdio>
#include <memory>

#include "datalog.h"

int main() {
  using namespace datalog;

  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);

  // A program with a redundant atom (the second g(y, z)) and a redundant
  // rule (the third rule is subsumed by the second).
  Result<Program> program = parser.ParseProgram(
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w).\n"
      "g(u, w) :- a(u, v), g(v, w), a(u, q).\n");
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("original program:\n%s\n", ToString(*program).c_str());

  // Minimize under uniform equivalence (the paper's Fig. 2 algorithm).
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(*program, &report);
  if (!minimized.ok()) {
    std::fprintf(stderr, "minimize error: %s\n",
                 minimized.status().ToString().c_str());
    return 1;
  }
  std::printf("minimized program (%zu atoms, %zu rules removed):\n%s\n",
              report.atoms_removed, report.rules_removed,
              ToString(*minimized).c_str());

  // Evaluate over an EDB.
  Result<Database> edb = ParseDatabase(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  if (!edb.ok()) return 1;
  Database db = *edb;
  Result<EvalStats> stats = EvaluateSemiNaive(*minimized, &db);
  if (!stats.ok()) return 1;
  std::printf("fixpoint after %d iterations, %llu joins:\n%s\n",
              stats->iterations,
              static_cast<unsigned long long>(stats->match.substitutions),
              db.ToString().c_str());

  // Answer a bound query with magic sets.
  Result<Atom> query = parser.ParseQuery("?- g(1, x).");
  if (!query.ok()) return 1;
  Result<std::vector<Tuple>> answers =
      AnswerQuery(*minimized, *edb, *query, EvalMethod::kMagicSemiNaive);
  if (!answers.ok()) return 1;
  std::printf("g(1, x) has %zu answers:\n", answers->size());
  for (const Tuple& t : *answers) {
    std::printf("  g(%s, %s)\n", ToString(t[0], *symbols).c_str(),
                ToString(t[1], *symbols).c_str());
  }
  return 0;
}
