// datalog-opt: command-line front end for the library.
//
//   datalog-opt minimize  PROGRAM            Fig. 2 minimization
//   datalog-opt optimize  PROGRAM            Fig. 2 + Section XI pipeline
//   datalog-opt eval      PROGRAM FACTS      semi-naive fixpoint
//   datalog-opt query     PROGRAM FACTS Q    magic-sets query, e.g. 'g(1, x).'
//   datalog-opt contains  P1 P2              P2 subseteq^u P1? (with witness)
//   datalog-opt prove     P1 P2 TGDS         Section X containment recipe
//   datalog-opt explain   PROGRAM FACTS F    derivation tree of fact F
//   datalog-opt incr      PROGRAM FACTS S    incremental update script S
//   datalog-opt serve     PROGRAM FACTS SOCK epoch-snapshot server on SOCK
//   datalog-opt client    SOCK SCRIPT        run a batch script against SOCK
//   datalog-opt analyze   PROGRAM            structure report
//   datalog-opt check     PROGRAM            static analysis diagnostics
//
// PROGRAM/FACTS/TGDS are file paths; pass '-' to read stdin.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "datalog.h"

namespace datalog {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: datalog-opt COMMAND ARGS...\n"
      "  minimize PROGRAM          remove atoms/rules redundant under\n"
      "                            uniform equivalence (Fig. 2)\n"
      "  optimize PROGRAM          minimize, then remove atoms redundant\n"
      "                            under equivalence (Section XI)\n"
      "  eval PROGRAM FACTS        compute the semi-naive fixpoint\n"
      "       [--threads N]        ... on N threads (positive programs;\n"
      "                            N=0 picks the hardware concurrency)\n"
      "       [--hints]            ... with the analyzer's static\n"
      "                            join-order hints installed\n"
      "  query PROGRAM FACTS Q     answer Q (e.g. 'g(1, x).') via magic sets\n"
      "  contains P1 P2            test P2 subseteq^u P1, print witness on\n"
      "                            failure\n"
      "  prove P1 P2 TGDS [-v]     prove P2 subseteq P1 via the Section X\n"
      "                            recipe with the given tgds; -v narrates\n"
      "                            the chase\n"
      "  minimize-sat PROGRAM TGDS minimize relative to databases\n"
      "                            satisfying the tgds (Section VIII)\n"
      "  explain PROGRAM FACTS F   print a derivation tree for fact F\n"
      "  incr PROGRAM FACTS SCRIPT maintain the fixpoint incrementally\n"
      "       [--threads N]        while applying the update script\n"
      "                            (+fact / -fact / ?query / commit lines,\n"
      "                            see docs/FILE_FORMAT.md)\n"
      "  serve PROGRAM FACTS SOCK  host the materialized fixpoint behind\n"
      "       [--workers N]        epoch snapshots on the unix socket SOCK,\n"
      "       [--threads N]        answering N clients concurrently\n"
      "                            (docs/server.md); --threads sets the\n"
      "                            view's maintenance parallelism\n"
      "  client SOCK SCRIPT        run an update script (incr grammar plus\n"
      "                            ping / stats / base / shutdown) against\n"
      "                            a running server\n"
      "  plan PROGRAM Q            show the relevance -> Fig. 2 -> magic\n"
      "                            pipeline for query Q\n"
      "  analyze PROGRAM           recursion/linearity/strata report\n"
      "  check PROGRAM             run the static analyzer (safety,\n"
      "       [--format=FMT]       stratification, dead code, redundancy,\n"
      "       [--budget N]         binding); FMT is text (default), json,\n"
      "       [--werror]           or sarif; N bounds containment tests\n"
      "       [--query Q]          and adornments (0 = unlimited); Q\n"
      "       [--pass LIST]        directs dead-code/binding analysis;\n"
      "                            LIST is a comma-separated pass subset;\n"
      "                            --werror fails on warnings too\n"
      "\n"
      "global flags (any command):\n"
      "  --trace FILE              write a Chrome trace-event JSON of the\n"
      "                            run (load at chrome://tracing)\n"
      "  --metrics FILE            write flat metrics JSON (counters from\n"
      "                            every engine and optimizer pass)\n"
      "  --no-bytecode             execute compiled join plans with the\n"
      "                            struct interpreter instead of the\n"
      "                            bytecode VM (docs/bytecode_vm.md)\n");
  return 2;
}

bool ReadInput(const std::string& path, std::string* out) {
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

template <typename T>
bool Check(const Result<T>& result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    return false;
  }
  return true;
}

int CmdMinimize(const std::string& text,
                const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(text);
  if (!Check(program, "parse")) return 1;
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(*program, &report);
  if (!Check(minimized, "minimize")) return 1;
  std::printf("%s", ToString(*minimized).c_str());
  for (const MinimizeReport::RemovedAtom& removal : report.removed_atoms) {
    std::fprintf(stderr, "rule %zu: removed atom %s\n", removal.rule_index,
                 ToString(removal.atom, *symbols).c_str());
  }
  for (const Rule& rule : report.removed_rules) {
    std::fprintf(stderr, "removed rule: %s\n",
                 ToString(rule, *symbols).c_str());
  }
  std::fprintf(stderr, "removed %zu atoms, %zu rules (%zu containment tests)\n",
               report.atoms_removed, report.rules_removed,
               report.containment_tests);
  return 0;
}

int CmdOptimize(const std::string& text,
                const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(text);
  if (!Check(program, "parse")) return 1;
  Result<Program> minimized = MinimizeProgram(*program);
  if (!Check(minimized, "minimize")) return 1;
  Result<EquivalenceOptimizeResult> optimized =
      OptimizeUnderEquivalence(*minimized);
  if (!Check(optimized, "optimize")) return 1;
  std::printf("%s", ToString(optimized->program).c_str());
  for (const EquivalenceRemoval& removal : optimized->removals) {
    std::fprintf(stderr, "rule %zu: removed", removal.rule_index);
    for (const Atom& atom : removal.removed) {
      std::fprintf(stderr, " %s", ToString(atom, *symbols).c_str());
    }
    std::fprintf(stderr, "  (witness: %s)\n",
                 ToString(removal.witness, *symbols).c_str());
  }
  return 0;
}

int CmdMinimizeSat(const std::string& program_text,
                   const std::string& tgds_text,
                   const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  Result<std::vector<Tgd>> tgds = parser.ParseTgds(tgds_text);
  if (!Check(tgds, "parse tgds")) return 1;
  MinimizeReport report;
  Result<Program> minimized =
      MinimizeProgramUnderConstraints(*program, *tgds, {}, &report);
  if (!Check(minimized, "minimize")) return 1;
  std::printf("%s", ToString(*minimized).c_str());
  std::fprintf(stderr,
               "removed %zu atoms, %zu rules relative to SAT(T)\n",
               report.atoms_removed, report.rules_removed);
  return 0;
}

int CmdEval(const std::string& program_text, const std::string& facts_text,
            std::size_t num_threads, bool use_hints,
            const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  Result<Database> db = ParseDatabase(symbols, facts_text);
  if (!Check(db, "parse facts")) return 1;
  Database work = *db;
  // With --hints, install the analyzer's static join-order hints for the
  // duration of the run. Hints only reorder joins; results are identical.
  JoinOrderHints hints;
  if (use_hints) {
    hints = StaticJoinHints(*program);
    SetJoinOrderHints(&hints);
    std::fprintf(stderr, "installed %zu join-order hints\n",
                 hints.order.size());
  }
  // The parallel engine handles positive programs; programs with
  // stratified negation stay on the sequential stratified engine.
  const bool parallel =
      num_threads != 1 && ValidatePositiveProgram(*program).ok();
  Result<EvalStats> stats =
      program->rules().empty() ? Result<EvalStats>(EvalStats{})
      : parallel ? EvaluateSemiNaiveParallel(*program, &work, num_threads)
                 : EvaluateStratified(*program, &work);
  if (use_hints) SetJoinOrderHints(nullptr);  // `hints` dies with this frame
  if (!Check(stats, "evaluate")) return 1;
  std::printf("%s", work.ToString().c_str());
  std::fprintf(stderr, "%d iterations, %llu facts derived, %llu joins\n",
               stats->iterations,
               static_cast<unsigned long long>(stats->facts_derived),
               static_cast<unsigned long long>(stats->match.substitutions));
  if (parallel) {
    std::fprintf(stderr,
                 "parallel: %llu rounds, %llu tasks "
                 "(index %.2fms, match %.2fms, merge %.2fms)\n",
                 static_cast<unsigned long long>(stats->parallel_rounds),
                 static_cast<unsigned long long>(stats->parallel_tasks),
                 static_cast<double>(stats->index_build_ns) / 1e6,
                 static_cast<double>(stats->parallel_match_ns) / 1e6,
                 static_cast<double>(stats->merge_ns) / 1e6);
  }
  return 0;
}

int CmdQuery(const std::string& program_text, const std::string& facts_text,
             const std::string& query_text,
             const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  Result<Database> db = ParseDatabase(symbols, facts_text);
  if (!Check(db, "parse facts")) return 1;
  std::string q = query_text;
  if (q.rfind("?-", 0) != 0) q = "?- " + q;
  Result<Atom> query = parser.ParseQuery(q);
  if (!Check(query, "parse query")) return 1;
  Result<std::vector<Tuple>> answers =
      AnswerQuery(*program, *db, *query, EvalMethod::kMagicSemiNaive);
  if (!answers.ok()) {
    // Extensional or non-rewritable queries fall back to semi-naive.
    answers = AnswerQuery(*program, *db, *query, EvalMethod::kSemiNaive);
  }
  if (!Check(answers, "query")) return 1;
  for (const Tuple& tuple : *answers) {
    std::string line = symbols->PredicateName(query->predicate());
    if (!tuple.empty()) {
      line += "(";
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        if (i != 0) line += ", ";
        line += ToString(tuple[i], *symbols);
      }
      line += ")";
    }
    std::printf("%s.\n", line.c_str());
  }
  std::fprintf(stderr, "%zu answers\n", answers->size());
  return 0;
}

int CmdContains(const std::string& p1_text, const std::string& p2_text,
                const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> p1 = parser.ParseProgram(p1_text);
  if (!Check(p1, "parse P1")) return 1;
  Result<Program> p2 = parser.ParseProgram(p2_text);
  if (!Check(p2, "parse P2")) return 1;
  for (const Rule& rule : p2->rules()) {
    Result<std::optional<UniformContainmentWitness>> witness =
        RefuteUniformContainment(*p1, rule);
    if (!Check(witness, "containment test")) return 1;
    if (witness->has_value()) {
      std::printf("NOT uniformly contained.\n");
      std::printf("witness rule: %s\n", ToString(rule, *symbols).c_str());
      std::printf("counterexample input:\n%s",
                  (*witness)->input.ToString().c_str());
      std::printf("P2 derives a fact for %s that P1 does not.\n",
                  symbols->PredicateName((*witness)->missing_pred).c_str());
      return 1;
    }
  }
  std::printf("P2 is uniformly contained in P1.\n");
  return 0;
}

int CmdProve(const std::string& p1_text, const std::string& p2_text,
             const std::string& tgds_text, bool verbose,
             const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> p1 = parser.ParseProgram(p1_text);
  if (!Check(p1, "parse P1")) return 1;
  Result<Program> p2 = parser.ParseProgram(p2_text);
  if (!Check(p2, "parse P2")) return 1;
  Result<std::vector<Tgd>> tgds = parser.ParseTgds(tgds_text);
  if (!Check(tgds, "parse tgds")) return 1;
  if (verbose) {
    // Narrate condition (1) per rule, in the style of the paper's worked
    // examples: freeze the rule body and chase it with [P1, T].
    for (const Rule& rule : p2->rules()) {
      ChaseTranscript transcript;
      Result<ProofOutcome> outcome =
          ModelContainmentForRule(*p1, *tgds, rule, {}, &transcript);
      if (!Check(outcome, "chase")) return 1;
      std::printf("chasing the frozen body of: %s   [%s]\n",
                  ToString(rule, *symbols).c_str(),
                  std::string(ToString(outcome.value())).c_str());
      std::printf("%s", transcript.ToString(*symbols, *tgds).c_str());
    }
  }
  Result<ContainmentProof> proof = ProveContainmentWithTgds(*p1, *p2, *tgds);
  if (!Check(proof, "prove")) return 1;
  std::printf("(1) SAT(T) ∩ M(P1) ⊆ M(P2):    %s\n",
              std::string(ToString(proof->model_containment)).c_str());
  std::printf("(2) P1 preserves T:            %s\n",
              std::string(ToString(proof->preservation)).c_str());
  std::printf("(3') preliminary DB satisfies: %s\n",
              std::string(ToString(proof->preliminary_db)).c_str());
  std::printf("=> P2 ⊆ P1: %s\n",
              std::string(ToString(proof->overall)).c_str());
  return proof->overall == ProofOutcome::kProved ? 0 : 1;
}

int CmdExplain(const std::string& program_text, const std::string& facts_text,
               const std::string& fact_text,
               const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  Result<Database> db = ParseDatabase(symbols, facts_text);
  if (!Check(db, "parse facts")) return 1;
  std::string f = fact_text;
  if (f.empty() || f.back() != '.') f += '.';
  Result<std::vector<Atom>> atoms = parser.ParseGroundAtoms(f);
  if (!Check(atoms, "parse fact") || atoms->empty()) return 1;
  const Atom& atom = atoms->front();
  Tuple tuple;
  for (const Term& t : atom.args()) tuple.push_back(t.value());
  Result<Derivation> derivation =
      ExplainFact(*program, *db, atom.predicate(), tuple);
  if (!Check(derivation, "explain")) return 1;
  std::printf("%s", ToString(*derivation, *symbols).c_str());
  return 0;
}

int CmdIncr(const std::string& program_text, const std::string& facts_text,
            const std::string& script_text, std::size_t num_threads,
            const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  Result<Database> db = ParseDatabase(symbols, facts_text);
  if (!Check(db, "parse facts")) return 1;
  // The whole script is validated (with line numbers) before any work.
  Result<std::vector<ScriptOp>> script =
      ParseUpdateScript(script_text, &parser, ScriptDialect::kIncr);
  if (!Check(script, "parse script")) return 1;
  IncrOptions options;
  options.num_threads = num_threads;
  Result<MaterializedView> view =
      MaterializedView::Create(*program, *db, options);
  if (!Check(view, "materialize")) return 1;
  std::fprintf(
      stderr, "materialized %zu facts (%llu joins)\n", view->db().NumFacts(),
      static_cast<unsigned long long>(
          view->initial_stats().match.substitutions));

  Transaction txn = view->Begin();
  int commit_number = 0;
  // Commits the pending transaction (if it buffered anything) and starts
  // a fresh one. Queries and end-of-script commit implicitly.
  auto commit = [&]() -> bool {
    if (txn.NumPendingOps() == 0) return true;
    Result<CommitStats> stats = txn.Commit();
    txn = view->Begin();
    if (!Check(stats, "commit")) return false;
    std::fprintf(stderr, "commit %d: %s\n", ++commit_number,
                 stats->ToString().c_str());
    return true;
  };

  for (const ScriptOp& op : *script) {
    switch (op.kind) {
      case ScriptOp::Kind::kCommit:
        if (!commit()) return 1;
        break;
      case ScriptOp::Kind::kInsert:
      case ScriptOp::Kind::kRetract:
        for (const Atom& atom : op.facts) {
          Status status = op.kind == ScriptOp::Kind::kInsert
                              ? txn.Insert(atom)
                              : txn.Retract(atom);
          if (!status.ok()) {
            std::fprintf(stderr, "error (script line %d): %s\n", op.line,
                         status.ToString().c_str());
            return 1;
          }
        }
        break;
      case ScriptOp::Kind::kQuery: {
        if (!commit()) return 1;  // queries see all preceding updates
        const Atom& query = op.query;
        std::vector<std::string> answers;
        EnumerateDeltaJoin(
            {query}, {AtomSourceSpec{&view->db(), nullptr, nullptr}}, {},
            [&](const Binding& binding) {
              Tuple tuple = InstantiateHead(query, binding);
              std::string text = symbols->PredicateName(query.predicate());
              if (!tuple.empty()) {
                text += "(";
                for (std::size_t i = 0; i < tuple.size(); ++i) {
                  if (i != 0) text += ", ";
                  text += ToString(tuple[i], *symbols);
                }
                text += ")";
              }
              answers.push_back(std::move(text));
              return true;
            },
            nullptr);
        std::sort(answers.begin(), answers.end());
        for (const std::string& answer : answers) {
          std::printf("%s.\n", answer.c_str());
        }
        std::fprintf(stderr, "?%s %zu answers\n",
                     ToString(query, *symbols).c_str(), answers.size());
        break;
      }
      default:  // client-only verbs cannot appear in the kIncr dialect
        break;
    }
  }
  return commit() ? 0 : 1;
}

/// `datalog-opt serve`: materialize the program and host it behind epoch
/// snapshots until a client sends `shutdown` (docs/server.md).
int CmdServe(const std::string& program_text, const std::string& facts_text,
             const std::string& socket_path, std::size_t num_workers,
             std::size_t num_threads,
             const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  Result<Database> db = ParseDatabase(symbols, facts_text);
  if (!Check(db, "parse facts")) return 1;
  ServerOptions options;
  options.socket_path = socket_path;
  options.num_workers = num_workers;
  options.incr_threads = num_threads;
  Result<std::unique_ptr<DatalogServer>> server =
      DatalogServer::Start(*program, *db, options);
  if (!Check(server, "serve")) return 1;
  std::fprintf(stderr, "serving on %s: %zu facts, %zu worker(s)\n",
               socket_path.c_str(), (*server)->Stats().view_facts,
               num_workers == 0 ? std::size_t{1} : num_workers);
  std::fflush(stderr);  // readiness line; smoke tests wait for the socket
  (*server)->WaitUntilStopped();
  (*server)->Stop();
  ServerStats stats = (*server)->Stats();
  std::fprintf(stderr, "server stopped: %s\n", stats.ToJson().c_str());
  return 0;
}

/// `datalog-opt client`: run a batch script (the incr grammar plus the
/// ping / stats / base / shutdown verbs) against a running server. Query
/// answers, stats JSON, and base dumps go to stdout; acks to stderr.
int CmdClient(const std::string& socket_path, const std::string& script_text) {
  auto symbols = std::make_shared<SymbolTable>();
  Parser parser(symbols);
  Result<std::vector<ScriptOp>> script =
      ParseUpdateScript(script_text, &parser, ScriptDialect::kClient);
  if (!Check(script, "parse script")) return 1;
  Result<DatalogClient> client = DatalogClient::Connect(socket_path);
  if (!Check(client, "connect")) return 1;

  // Transport failures and server-side errors both abort the batch with a
  // line-numbered message; nothing is silently skipped.
  Reply last;
  auto call = [&](const char* what, int line,
                  Result<Reply> reply) -> const Reply* {
    if (!reply.ok()) {
      std::fprintf(stderr, "error (%s, script line %d): %s\n", what, line,
                   reply.status().ToString().c_str());
      return nullptr;
    }
    if (!reply->ok) {
      std::fprintf(stderr, "error (%s, script line %d): %s\n", what, line,
                   reply->body.c_str());
      return nullptr;
    }
    last = *std::move(reply);
    return &last;
  };
  auto facts_text_of = [&](const std::vector<Atom>& facts) {
    std::string text;
    for (const Atom& atom : facts) {
      text += ToString(atom, *symbols);
      text += ". ";
    }
    return text;
  };

  for (const ScriptOp& op : *script) {
    switch (op.kind) {
      case ScriptOp::Kind::kInsert:
      case ScriptOp::Kind::kRetract: {
        const bool insert = op.kind == ScriptOp::Kind::kInsert;
        const Reply* reply =
            call(insert ? "insert" : "retract", op.line,
                 insert ? client->Insert(facts_text_of(op.facts))
                        : client->Retract(facts_text_of(op.facts)));
        if (reply == nullptr) return 1;
        break;
      }
      case ScriptOp::Kind::kCommit: {
        const Reply* reply = call("commit", op.line, client->Commit());
        if (reply == nullptr) return 1;
        std::fprintf(stderr, "commit @ epoch %llu: %s\n",
                     static_cast<unsigned long long>(reply->epoch),
                     reply->body.c_str());
        break;
      }
      case ScriptOp::Kind::kQuery: {
        // Same semantics as `incr`: a query first commits pending ops (an
        // empty commit just refreshes the pinned snapshot).
        if (call("commit", op.line, client->Commit()) == nullptr) return 1;
        const std::string query_text = ToString(op.query, *symbols);
        const Reply* reply = call("query", op.line, client->Query(query_text));
        if (reply == nullptr) return 1;
        std::fputs(reply->body.c_str(), stdout);
        std::fprintf(stderr, "?%s %zu answers @ epoch %llu\n",
                     query_text.c_str(),
                     static_cast<std::size_t>(std::count(
                         reply->body.begin(), reply->body.end(), '\n')),
                     static_cast<unsigned long long>(reply->epoch));
        break;
      }
      case ScriptOp::Kind::kPing: {
        const Reply* reply = call("ping", op.line, client->Ping());
        if (reply == nullptr) return 1;
        std::fprintf(stderr, "%s @ epoch %llu\n", reply->body.c_str(),
                     static_cast<unsigned long long>(reply->epoch));
        break;
      }
      case ScriptOp::Kind::kStats: {
        const Reply* reply = call("stats", op.line, client->Stats());
        if (reply == nullptr) return 1;
        std::printf("%s\n", reply->body.c_str());
        break;
      }
      case ScriptOp::Kind::kDumpBase: {
        const Reply* reply = call("base", op.line, client->DumpBase());
        if (reply == nullptr) return 1;
        std::fputs(reply->body.c_str(), stdout);
        std::fprintf(stderr, "base @ epoch %llu\n",
                     static_cast<unsigned long long>(reply->epoch));
        break;
      }
      case ScriptOp::Kind::kShutdown: {
        const Reply* reply = call("shutdown", op.line, client->Shutdown());
        if (reply == nullptr) return 1;
        std::fprintf(stderr, "%s\n", reply->body.c_str());
        break;
      }
    }
  }
  return 0;
}

int CmdPlan(const std::string& program_text, const std::string& query_text,
            const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(program_text);
  if (!Check(program, "parse program")) return 1;
  std::string q = query_text;
  if (q.rfind("?-", 0) != 0) q = "?- " + q;
  Result<Atom> query = parser.ParseQuery(q);
  if (!Check(query, "parse query")) return 1;
  PlanOptions options;
  options.equivalence_pass = true;
  Result<QueryPlan> plan = PlanQuery(*program, *query, options);
  if (!Check(plan, "plan")) return 1;
  std::printf("== after relevance restriction (%zu of %zu rules) ==\n%s\n",
              plan->restricted.NumRules(), program->NumRules(),
              ToString(plan->restricted).c_str());
  std::printf("== after minimization (%zu atoms, %zu rules removed) ==\n%s\n",
              plan->report.atoms_removed, plan->report.rules_removed,
              ToString(plan->optimized).c_str());
  std::printf("== magic-sets rewrite (answers in %s) ==\n%s",
              symbols->PredicateName(plan->magic.answer_predicate).c_str(),
              ToString(plan->magic.program).c_str());
  return 0;
}

int CmdAnalyze(const std::string& text,
               const std::shared_ptr<SymbolTable>& symbols) {
  Parser parser(symbols);
  Result<Program> program = parser.ParseProgram(text);
  if (!Check(program, "parse")) return 1;
  Status valid = ValidateProgram(*program);
  std::printf("rules:        %zu\n", program->NumRules());
  std::printf("body atoms:   %zu\n", program->TotalBodyLiterals());
  std::printf("valid:        %s\n",
              valid.ok() ? "yes" : valid.ToString().c_str());
  DependenceGraph graph(*program);
  std::printf("recursive:    %s\n", graph.IsRecursive() ? "yes" : "no");
  std::printf("linear:       %s\n",
              graph.IsLinear(*program) ? "yes" : "no");
  std::printf("intentional: ");
  for (PredicateId pred : program->IntentionalPredicates()) {
    std::printf(" %s", symbols->PredicateName(pred).c_str());
  }
  std::printf("\nextensional: ");
  for (PredicateId pred : program->ExtensionalPredicates()) {
    std::printf(" %s", symbols->PredicateName(pred).c_str());
  }
  std::printf("\n");
  Result<std::vector<std::vector<PredicateId>>> strata = graph.Stratify();
  if (strata.ok()) {
    std::printf("strata:       %zu\n", strata->size());
  } else {
    std::printf("strata:       not stratifiable\n");
  }
  return 0;
}

/// `datalog-opt check`: parse with exact token spans, run the analyzer,
/// render diagnostics. Exit code 0 = clean (infos/warnings allowed),
/// 1 = errors (or warnings under --werror), 2 = usage. A parse failure is
/// itself reported as a diagnostic so --format=json stays machine-readable.
int CmdCheck(const std::string& text, const std::string& label,
             const std::vector<std::string>& flags,
             const std::shared_ptr<SymbolTable>& symbols) {
  std::string format = "text";
  std::string query_text;
  std::string pass_list;
  bool werror = false;
  AnalyzerOptions options;

  for (std::size_t i = 0; i < flags.size(); ++i) {
    const std::string& flag = flags[i];
    auto value_of = [&](const std::string& name,
                        std::string* out) -> int {
      // --name=VALUE or --name VALUE; returns slots consumed (0 = no
      // match, -1 = malformed).
      if (flag.rfind(name + "=", 0) == 0) {
        *out = flag.substr(name.size() + 1);
        return out->empty() ? -1 : 1;
      }
      if (flag == name) {
        if (i + 1 >= flags.size()) return -1;
        *out = flags[i + 1];
        return 2;
      }
      return 0;
    };
    if (flag == "--werror") {
      werror = true;
      continue;
    }
    std::string value;
    int consumed = value_of("--format", &value);
    if (consumed > 0) {
      if (value != "text" && value != "json" && value != "sarif") {
        std::fprintf(stderr, "error: unknown --format '%s'\n", value.c_str());
        return 2;
      }
      format = value;
      i += static_cast<std::size_t>(consumed) - 1;
      continue;
    }
    if (consumed == 0 && (consumed = value_of("--budget", &value)) > 0) {
      char* end = nullptr;
      unsigned long budget = std::strtoul(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "error: --budget expects a number, got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.budget = static_cast<std::size_t>(budget);
      i += static_cast<std::size_t>(consumed) - 1;
      continue;
    }
    if (consumed == 0) consumed = value_of("--query", &query_text);
    if (consumed == 0) consumed = value_of("--pass", &pass_list);
    if (consumed < 0) {
      std::fprintf(stderr, "error: %s expects a value\n", flag.c_str());
      return 2;
    }
    if (consumed > 0) {
      i += static_cast<std::size_t>(consumed) - 1;
      continue;
    }
    std::fprintf(stderr, "error: unknown check flag '%s'\n", flag.c_str());
    return 2;
  }

  if (!pass_list.empty()) {
    options.safety = options.stratification = options.dead_code =
        options.redundancy = options.binding = false;
    std::size_t start = 0;
    while (start <= pass_list.size()) {
      std::size_t comma = pass_list.find(',', start);
      if (comma == std::string::npos) comma = pass_list.size();
      const std::string name = pass_list.substr(start, comma - start);
      if (name == "safety") options.safety = true;
      else if (name == "stratification") options.stratification = true;
      else if (name == "dead_code") options.dead_code = true;
      else if (name == "redundancy") options.redundancy = true;
      else if (name == "binding") options.binding = true;
      else {
        std::fprintf(stderr, "error: unknown pass '%s'\n", name.c_str());
        return 2;
      }
      start = comma + 1;
    }
  }

  Parser parser(symbols);
  std::vector<Diagnostic> diagnostics;
  bool budget_exhausted = false;
  Result<ParsedProgram> parsed = parser.ParseProgramWithSource(text);
  if (!parsed.ok()) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "parse";
    d.code = "syntax-error";
    d.message = parsed.status().message();
    diagnostics.push_back(std::move(d));
  } else {
    if (!query_text.empty()) {
      std::string q = query_text;
      if (q.rfind("?-", 0) != 0) q = "?- " + q;
      Result<Atom> query = parser.ParseQuery(q);
      if (!Check(query, "parse query")) return 2;
      options.query = *query;
    }
    AnalysisResult result = AnalyzeParsed(*parsed, options);
    diagnostics = std::move(result.diagnostics);
    budget_exhausted = result.budget_exhausted;
  }

  if (format == "json") {
    std::printf("%s",
                DiagnosticsToJson(diagnostics, label, budget_exhausted)
                    .c_str());
  } else if (format == "sarif") {
    std::printf("%s", DiagnosticsToSarif(diagnostics, label).c_str());
  } else {
    std::printf("%s", DiagnosticsToText(diagnostics).c_str());
  }
  DiagnosticCounts counts = CountBySeverity(diagnostics);
  std::fprintf(stderr, "%s: %zu errors, %zu warnings, %zu infos%s\n",
               label.c_str(), counts.errors, counts.warnings, counts.infos,
               budget_exhausted ? " (budget exhausted)" : "");
  if (counts.errors > 0) return 1;
  if (werror && counts.warnings > 0) return 1;
  return 0;
}

/// Consumes `--NAME FILE` or `--NAME=FILE` at args[i]; on a match stores
/// the file into `*out` and returns the number of argv slots consumed
/// (1 or 2). Returns 0 when args[i] is not this flag, -1 on a malformed
/// occurrence (missing value).
int MatchPathFlag(char** argv, int argc, int i, const char* flag_name,
                  std::string* out) {
  const std::size_t name_len = std::strlen(flag_name);
  if (std::strncmp(argv[i], flag_name, name_len) != 0) return 0;
  if (argv[i][name_len] == '=') {
    *out = argv[i] + name_len + 1;
    return out->empty() ? -1 : 1;
  }
  if (argv[i][name_len] != '\0') return 0;  // e.g. --tracey
  if (i + 1 >= argc) return -1;
  *out = argv[i + 1];
  return 2;
}

int Main(int argc, char** argv) {
  // Extract `--threads N`, `--trace FILE`, and `--metrics FILE` (anywhere
  // after the command) before positional parsing; only `eval`/`incr`
  // consume --threads, while --trace/--metrics apply to every command.
  std::size_t num_threads = 1;
  std::size_t num_workers = 2;
  bool use_hints = false;
  std::string trace_path;
  std::string metrics_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hints") == 0) {
      use_hints = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-bytecode") == 0) {
      // Ablation knob: run compiled plans through the struct
      // interpreter instead of the bytecode VM (docs/bytecode_vm.md).
      // The work-counter gate in tools/check.sh uses this to pin both
      // executors' counters independently.
      SetBytecodeExecution(false);
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0 ||
        std::strcmp(argv[i], "--workers") == 0) {
      const bool threads = std::strcmp(argv[i], "--threads") == 0;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a number\n", argv[i]);
        return 2;
      }
      char* end = nullptr;
      unsigned long value = std::strtoul(argv[i + 1], &end, 10);
      // strtoul silently wraps negative input ("-1" parses as ULONG_MAX),
      // so cap at a sane thread count instead of trusting the raw value.
      if (end == argv[i + 1] || *end != '\0' || value > 1024) {
        std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                     argv[i], argv[i + 1]);
        return 2;
      }
      (threads ? num_threads : num_workers) = static_cast<std::size_t>(value);
      ++i;
      continue;
    }
    int consumed = MatchPathFlag(argv, argc, i, "--trace", &trace_path);
    if (consumed == 0) {
      consumed = MatchPathFlag(argv, argc, i, "--metrics", &metrics_path);
    }
    if (consumed < 0) {
      std::fprintf(stderr, "error: %s expects a file path\n", argv[i]);
      return 2;
    }
    if (consumed > 0) {
      i += consumed - 1;
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (!trace_path.empty()) Tracer::Get().Enable();
  if (!metrics_path.empty()) MetricsRegistry::Get().Enable();

  // Dispatch through a lambda so the trace/metrics files are written on
  // every exit path, including usage errors after flags were parsed.
  auto dispatch = [&]() -> int {
    if (argc < 3) return Usage();
    const std::string command = argv[1];
    auto symbols = std::make_shared<SymbolTable>();

    // client's second argument is a socket path, not an input file.
    if (command == "client") {
      if (argc < 4) return Usage();
      std::string script;
      if (!ReadInput(argv[3], &script)) return 1;
      return CmdClient(argv[2], script);
    }

    std::string first;
    if (!ReadInput(argv[2], &first)) return 1;

    if (command == "minimize") return CmdMinimize(first, symbols);
    if (command == "optimize") return CmdOptimize(first, symbols);
    if (command == "analyze") return CmdAnalyze(first, symbols);
    if (command == "check") {
      const std::string label =
          std::strcmp(argv[2], "-") == 0 ? "<stdin>" : argv[2];
      std::vector<std::string> flags(argv + 3, argv + argc);
      return CmdCheck(first, label, flags, symbols);
    }

    if (argc < 4) return Usage();
    // plan's second argument is the query text itself, not a file.
    if (command == "plan") return CmdPlan(first, argv[3], symbols);

    std::string second;
    if (!ReadInput(argv[3], &second)) return 1;

    if (command == "eval") {
      return CmdEval(first, second, num_threads, use_hints, symbols);
    }
    if (command == "contains") return CmdContains(first, second, symbols);
    if (command == "minimize-sat") {
      return CmdMinimizeSat(first, second, symbols);
    }

    if (argc < 5) return Usage();
    // serve's third argument is the socket path to create, not a file.
    if (command == "serve") {
      return CmdServe(first, second, argv[4], num_workers, num_threads,
                      symbols);
    }
    if (command == "query") return CmdQuery(first, second, argv[4], symbols);
    if (command == "explain") {
      return CmdExplain(first, second, argv[4], symbols);
    }
    if (command == "incr") {
      std::string third;
      if (!ReadInput(argv[4], &third)) return 1;
      return CmdIncr(first, second, third, num_threads, symbols);
    }
    if (command == "prove") {
      std::string third;
      if (!ReadInput(argv[4], &third)) return 1;
      bool verbose = argc > 5 && std::strcmp(argv[5], "-v") == 0;
      return CmdProve(first, second, third, verbose, symbols);
    }
    return Usage();
  };

  int code = dispatch();
  if (!trace_path.empty() && !Tracer::Get().WriteJsonFile(trace_path)) {
    code = code == 0 ? 1 : code;
  }
  if (!metrics_path.empty() &&
      !MetricsRegistry::Get().WriteJsonFile(metrics_path)) {
    code = code == 0 ? 1 : code;
  }
  return code;
}

}  // namespace
}  // namespace datalog

int main(int argc, char** argv) { return datalog::Main(argc, argv); }
