#!/usr/bin/env bash
# Datalog lint gate: run `datalog-opt check --format=json` over every
# checked-in .dl program -- examples/ and the minimization corpus -- and
# fail on any error-severity diagnostic. Warnings are allowed: corpus
# inputs deliberately contain planted redundancy (that is what the
# minimizer tests minimize), and the analyzer reporting it is correct
# behavior, not a lint failure. The golden analyzer cases under
# tests/analysis/cases are excluded: several of them are deliberately
# broken programs with annotated expected errors, and the analysis_test
# suite is their gate.
#
#   tools/lint.sh [BUILD_DIR]        # default build dir: ./build
#   DATALOG_LINT_OUT=dir tools/lint.sh   # also keep per-file JSON reports
#
# Exit status: 0 when every file is error-free, 1 otherwise.

set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
CLI="${BUILD_DIR}/tools/datalog-opt"
OUT_DIR="${DATALOG_LINT_OUT:-}"

if [ ! -x "${CLI}" ]; then
  echo "lint: ${CLI} not built (run: cmake --build ${BUILD_DIR} --target datalog-opt)" >&2
  exit 1
fi
if [ -n "${OUT_DIR}" ]; then
  mkdir -p "${OUT_DIR}"
fi

failed=0
checked=0
while IFS= read -r file; do
  checked=$((checked + 1))
  rel="${file#"${ROOT}"/}"
  json="$("${CLI}" check "${file}" --format=json 2>/dev/null)"
  status=$?
  if [ -n "${OUT_DIR}" ]; then
    printf '%s\n' "${json}" > "${OUT_DIR}/$(echo "${rel}" | tr '/' '_').json"
  fi
  if [ "${status}" -ge 2 ]; then
    echo "lint: FAIL ${rel} (datalog-opt check exited ${status})"
    failed=1
  elif [ "${status}" -eq 1 ]; then
    echo "lint: FAIL ${rel}"
    printf '%s\n' "${json}" | sed 's/^/    /'
    failed=1
  else
    echo "lint: ok   ${rel}"
  fi
done < <(find "${ROOT}/examples" "${ROOT}/tests/corpus" -name '*.dl' | sort)

if [ "${checked}" -eq 0 ]; then
  echo "lint: no .dl files found" >&2
  exit 1
fi
if [ "${failed}" -ne 0 ]; then
  echo "lint: error diagnostics found (see above)"
  exit 1
fi
echo "lint: ${checked} files clean"
