#!/usr/bin/env bash
# Sanitizer check harness. Builds the library and tests under
# ThreadSanitizer and runs the evaluation-engine suites (the ones that
# exercise the parallel evaluator's frozen-snapshot contract), then
# repeats the incremental-maintenance fuzzer under ASan+UBSan.
#
#   tools/check.sh            # TSan gate + ASan/UBSan incremental fuzzer
#   tools/check.sh thread     # TSan gate only, explicit
#   tools/check.sh address,undefined   # ASan+UBSan suites instead
#   DATALOG_CHECK_ALL=1 tools/check.sh # run the full ctest suite
#   DATALOG_CHECK_INCR_ASAN=0 tools/check.sh  # skip the extra ASan pass
#
# Benchmarks and examples are skipped: sanitizer builds are for
# correctness, not measurement.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

configure_and_build() {
  local sanitize="$1"
  local build_dir="${ROOT}/build-sanitize-${sanitize//,/-}"

  echo "== configuring (${sanitize}) into ${build_dir}"
  cmake -B "${build_dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDATALOG_SANITIZE="${sanitize}" \
    -DDATALOG_BUILD_BENCHMARKS=OFF

  echo "== building (${sanitize})"
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target util_test eval_test incr_test integration_test
}

run_gate() {
  local sanitize="$1"
  local build_dir="${ROOT}/build-sanitize-${sanitize//,/-}"

  echo "== running tests under -fsanitize=${sanitize}"
  cd "${build_dir}"
  if [ "${DATALOG_CHECK_ALL:-0}" = "1" ]; then
    ctest --output-on-failure -j "${JOBS}"
  else
    # The thread-pool, parallel-evaluator, concurrent-relation,
    # incremental-maintenance, and differential tests all live in
    # these four suites.
    ./tests/util_test
    ./tests/eval_test
    ./tests/incr_test
    ./tests/integration_test \
      --gtest_filter='*DifferentialEngine*:*MethodsAgree*:*Incremental*'
  fi
  cd "${ROOT}"

  echo "== OK (${sanitize})"
}

SANITIZE="${1:-thread}"
configure_and_build "${SANITIZE}"
run_gate "${SANITIZE}"

# With the default TSan gate, also fuzz the incremental engine under
# ASan+UBSan: EraseAll invalidates lazy indexes and DRed erases and
# re-adds rows within one commit, which is exactly the churn that
# use-after-free bugs hide in. TSan cannot see those; ASan can.
if [ "${SANITIZE}" = "thread" ] && [ "${DATALOG_CHECK_INCR_ASAN:-1}" = "1" ]; then
  configure_and_build "address,undefined"
  build_dir="${ROOT}/build-sanitize-address-undefined"
  echo "== running incremental fuzzer under -fsanitize=address,undefined"
  cd "${build_dir}"
  ./tests/incr_test
  ./tests/integration_test --gtest_filter='*Incremental*'
  cd "${ROOT}"
  echo "== OK (address,undefined incremental fuzzer)"
fi
