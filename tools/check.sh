#!/usr/bin/env bash
# Sanitizer check harness. Builds the library and tests under
# ThreadSanitizer and runs the evaluation-engine suites (the ones that
# exercise the parallel evaluator's frozen-snapshot contract), then
# optionally repeats under ASan+UBSan.
#
#   tools/check.sh            # TSan build + eval/util/integration tests
#   tools/check.sh thread     # same, explicit
#   tools/check.sh address,undefined   # ASan+UBSan instead
#   DATALOG_CHECK_ALL=1 tools/check.sh # run the full ctest suite
#
# Benchmarks and examples are skipped: sanitizer builds are for
# correctness, not measurement.

set -euo pipefail

SANITIZE="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build-sanitize-${SANITIZE//,/-}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== configuring (${SANITIZE}) into ${BUILD_DIR}"
cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDATALOG_SANITIZE="${SANITIZE}" \
  -DDATALOG_BUILD_BENCHMARKS=OFF

echo "== building"
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target util_test eval_test integration_test

echo "== running tests under -fsanitize=${SANITIZE}"
cd "${BUILD_DIR}"
if [ "${DATALOG_CHECK_ALL:-0}" = "1" ]; then
  ctest --output-on-failure -j "${JOBS}"
else
  # The thread-pool, parallel-evaluator, concurrent-relation, and
  # differential tests all live in these three suites.
  ./tests/util_test
  ./tests/eval_test
  ./tests/integration_test \
    --gtest_filter='*DifferentialEngine*:*MethodsAgree*'
fi

echo "== OK (${SANITIZE})"
