#!/usr/bin/env bash
# Sanitizer check harness. Builds the library and tests under
# ThreadSanitizer and runs the evaluation-engine suites (the ones that
# exercise the parallel evaluator's frozen-snapshot contract), then
# repeats the incremental-maintenance fuzzer under ASan+UBSan. Also
# smoke-tests the observability layer: the CLI's --trace/--metrics
# output must be valid JSON.
#
#   tools/check.sh            # TSan gate + ASan/UBSan incremental fuzzer
#   tools/check.sh thread     # TSan gate only, explicit
#   tools/check.sh address,undefined   # ASan+UBSan suites instead
#   DATALOG_CHECK_ALL=1 tools/check.sh # run the full ctest suite
#   DATALOG_CHECK_INCR_ASAN=0 tools/check.sh  # skip the extra ASan pass
#
# Benchmarks and examples are skipped: sanitizer builds are for
# correctness, not measurement.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

configure_and_build() {
  local sanitize="$1"
  local build_dir="${ROOT}/build-sanitize-${sanitize//,/-}"

  echo "== configuring (${sanitize}) into ${build_dir}"
  cmake -B "${build_dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDATALOG_SANITIZE="${sanitize}" \
    -DDATALOG_BUILD_BENCHMARKS=OFF

  echo "== building (${sanitize})"
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target util_test eval_test incr_test obs_test core_test \
             integration_test datalog-opt
}

# The tracer and metrics registry write their own JSON; make sure a real
# CLI run produces files that actually parse.
validate_obs_json() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "== skipping trace/metrics JSON validation (no python3)"
    return 0
  fi
  local tmp
  tmp="$(mktemp -d)"
  printf 't(x, y) :- e(x, y).\nt(x, z) :- t(x, y), e(y, z).\n' \
    > "${tmp}/p.dl"
  printf 'e(1, 2).\ne(2, 3).\ne(3, 1).\n' > "${tmp}/f.dl"
  "${build_dir}/tools/datalog-opt" eval "${tmp}/p.dl" "${tmp}/f.dl" \
    --trace="${tmp}/trace.json" --metrics="${tmp}/metrics.json" \
    > /dev/null
  python3 -m json.tool "${tmp}/trace.json" > /dev/null
  python3 -m json.tool "${tmp}/metrics.json" > /dev/null
  rm -rf "${tmp}"
  echo "== OK (trace/metrics JSON parses)"
}

run_gate() {
  local sanitize="$1"
  local build_dir="${ROOT}/build-sanitize-${sanitize//,/-}"

  echo "== running tests under -fsanitize=${sanitize}"
  cd "${build_dir}"
  if [ "${DATALOG_CHECK_ALL:-0}" = "1" ]; then
    ctest --output-on-failure -j "${JOBS}"
  else
    # The thread-pool, parallel-evaluator, concurrent-relation,
    # incremental-maintenance, and differential tests all live in
    # these suites. obs_test runs the trace-invariant checks (which
    # drive the parallel engines with tracing enabled), and core_test's
    # metamorphic filter runs the minimizer fuzzer.
    ./tests/util_test
    ./tests/eval_test
    ./tests/incr_test
    ./tests/obs_test
    ./tests/core_test --gtest_filter='*MinimizeMetamorphic*'
    ./tests/integration_test \
      --gtest_filter='*DifferentialEngine*:*MethodsAgree*:*Incremental*:*TabledTopDown*'
  fi
  cd "${ROOT}"
  validate_obs_json "${build_dir}"

  echo "== OK (${sanitize})"
}

SANITIZE="${1:-thread}"
configure_and_build "${SANITIZE}"
run_gate "${SANITIZE}"

# With the default TSan gate, also fuzz the incremental engine under
# ASan+UBSan: EraseAll invalidates lazy indexes and DRed erases and
# re-adds rows within one commit, which is exactly the churn that
# use-after-free bugs hide in. TSan cannot see those; ASan can.
if [ "${SANITIZE}" = "thread" ] && [ "${DATALOG_CHECK_INCR_ASAN:-1}" = "1" ]; then
  configure_and_build "address,undefined"
  build_dir="${ROOT}/build-sanitize-address-undefined"
  echo "== running incremental fuzzer under -fsanitize=address,undefined"
  cd "${build_dir}"
  ./tests/incr_test
  ./tests/integration_test --gtest_filter='*Incremental*'
  cd "${ROOT}"
  echo "== OK (address,undefined incremental fuzzer)"
fi
