#!/usr/bin/env bash
# Sanitizer check harness. Builds the library and tests under
# ThreadSanitizer and runs the evaluation-engine suites (the ones that
# exercise the parallel evaluator's frozen-snapshot contract; eval_test
# includes the storage-conformance suite that runs every relation
# invariant against both the columnar and row-store backends, and
# integration_test includes the differential fuzzer whose knob matrix
# crosses multiway x left-deep x columnar x compiled x bytecode x
# {sequential, parallel, incremental}),
# then repeats the incremental-maintenance fuzzer under ASan+UBSan. Also
# smoke-tests the observability layer: the CLI's --trace/--metrics
# output must be valid JSON, runs a deterministic work-counter
# regression gate (eval.tuples_scanned / eval.index_lookups on a fixed
# corpus must stay at or below tools/work_counters.baseline), and runs
# the datalog lint gate (tools/lint.sh: `datalog-opt check` over every
# checked-in .dl program must report no error diagnostics).
#
#   tools/check.sh            # TSan gate + ASan/UBSan incremental fuzzer
#   tools/check.sh thread     # TSan gate only, explicit
#   tools/check.sh address,undefined   # ASan+UBSan suites instead
#   DATALOG_CHECK_ALL=1 tools/check.sh # run the full ctest suite
#   DATALOG_CHECK_INCR_ASAN=0 tools/check.sh  # skip the extra ASan pass
#
# Benchmarks and examples are skipped: sanitizer builds are for
# correctness, not measurement.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

configure_and_build() {
  local sanitize="$1"
  local build_dir="${ROOT}/build-sanitize-${sanitize//,/-}"

  echo "== configuring (${sanitize}) into ${build_dir}"
  cmake -B "${build_dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDATALOG_SANITIZE="${sanitize}" \
    -DDATALOG_BUILD_BENCHMARKS=OFF

  echo "== building (${sanitize})"
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target util_test eval_test incr_test obs_test core_test \
             integration_test server_test server_oracle_test datalog-opt
}

# The tracer and metrics registry write their own JSON; make sure a real
# CLI run produces files that actually parse.
validate_obs_json() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "== skipping trace/metrics JSON validation (no python3)"
    return 0
  fi
  local tmp
  tmp="$(mktemp -d)"
  printf 't(x, y) :- e(x, y).\nt(x, z) :- t(x, y), e(y, z).\n' \
    > "${tmp}/p.dl"
  printf 'e(1, 2).\ne(2, 3).\ne(3, 1).\n' > "${tmp}/f.dl"
  "${build_dir}/tools/datalog-opt" eval "${tmp}/p.dl" "${tmp}/f.dl" \
    --trace="${tmp}/trace.json" --metrics="${tmp}/metrics.json" \
    > /dev/null
  python3 -m json.tool "${tmp}/trace.json" > /dev/null
  python3 -m json.tool "${tmp}/metrics.json" > /dev/null
  rm -rf "${tmp}"
  echo "== OK (trace/metrics JSON parses)"
}

# Deterministic work-counter regression gate. Join-order plans are
# resolved once per (rule, delta position) against whole-round sizes, so
# eval.tuples_scanned / eval.index_lookups are exactly reproducible on a
# fixed corpus; any increase over the checked-in baseline
# (tools/work_counters.baseline) is a planner or matcher regression, not
# noise. Regenerate the baseline by pasting this gate's "measured" output
# after a deliberate change.
run_work_counter_gate() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "== skipping work-counter gate (no python3)"
    return 0
  fi
  echo "== running work-counter regression gate"
  local tmp
  tmp="$(mktemp -d)"

  # tc: linear transitive closure over a 48-node chain.
  printf 't(x, y) :- e(x, y).\nt(x, z) :- t(x, y), e(y, z).\n' \
    > "${tmp}/tc.dl"
  : > "${tmp}/tc_facts.dl"
  for i in $(seq 1 47); do
    printf 'e(%d, %d).\n' "$i" $((i + 1)) >> "${tmp}/tc_facts.dl"
  done

  # sg: the classic two-sided same-generation join over a 31-node
  # complete binary tree.
  printf 'sg(x, y) :- flat(x, y).\nsg(x, y) :- up(x, u), sg(u, v), down(v, y).\n' \
    > "${tmp}/sg.dl"
  : > "${tmp}/sg_facts.dl"
  for i in $(seq 2 31); do
    printf 'up(%d, %d).\ndown(%d, %d).\n' "$i" $((i / 2)) $((i / 2)) "$i" \
      >> "${tmp}/sg_facts.dl"
  done
  for i in $(seq 1 31); do
    printf 'flat(%d, %d).\n' "$i" "$i" >> "${tmp}/sg_facts.dl"
  done

  # sel: a selective constant probe next to an unselective scan; greedy
  # ordering must keep the probe first.
  printf 'out(x, y) :- big(x, y), tiny(0, x).\n' > "${tmp}/sel.dl"
  : > "${tmp}/sel_facts.dl"
  for i in $(seq 0 63); do
    printf 'big(%d, %d).\n' "$i" $(((i * 7 + 3) % 64)) >> "${tmp}/sel_facts.dl"
  done
  printf 'tiny(0, 5).\n' >> "${tmp}/sel_facts.dl"

  # tri: a hub-skewed triangle query over a 25-node ring plus one hub
  # connected in both directions. The body's join hypergraph is cyclic
  # with width 2, so the planner selects the worst-case-optimal multiway
  # intersection; this case pins that executor's work counters.
  printf 'tri(x, y, z) :- e(x, y), e(y, z), e(z, x).\n' > "${tmp}/tri.dl"
  : > "${tmp}/tri_facts.dl"
  for i in $(seq 1 24); do
    printf 'e(%d, %d).\ne(0, %d).\ne(%d, 0).\n' "$i" $((i % 24 + 1)) "$i" "$i" \
      >> "${tmp}/tri_facts.dl"
  done

  # Each case runs twice: once on the default bytecode VM and once with
  # --no-bytecode (the struct interpreter), as `<case>` and
  # `<case>_struct` rows. The two executors promise identical counters,
  # so the paired rows also pin that parity in CI.
  local case_name row_name flag
  : > "${tmp}/measured.txt"
  for case_name in tc sg sel tri; do
    for flag in "" "--no-bytecode"; do
      row_name="${case_name}${flag:+_struct}"
      # shellcheck disable=SC2086
      "${build_dir}/tools/datalog-opt" eval ${flag} "${tmp}/${case_name}.dl" \
        "${tmp}/${case_name}_facts.dl" \
        --metrics="${tmp}/${row_name}_m.json" > /dev/null
      python3 - "${row_name}" "${tmp}/${row_name}_m.json" \
        >> "${tmp}/measured.txt" <<'PYEOF'
import json, sys
name, path = sys.argv[1], sys.argv[2]
counters = {"eval.tuples_scanned": 0, "eval.index_lookups": 0}
with open(path) as f:
    for m in json.load(f)["metrics"]:
        if m["name"] in counters:
            counters[m["name"]] += m["value"]
print(name, counters["eval.tuples_scanned"], counters["eval.index_lookups"])
PYEOF
    done
  done

  python3 - "${ROOT}/tools/work_counters.baseline" "${tmp}/measured.txt" <<'PYEOF'
import sys
def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            name, scanned, lookups = line.split()
            rows[name] = (int(scanned), int(lookups))
    return rows
baseline = load(sys.argv[1])
measured = load(sys.argv[2])
failed = False
for name, (scanned, lookups) in sorted(measured.items()):
    if name not in baseline:
        print(f"work-counter gate: no baseline for case '{name}'")
        failed = True
        continue
    base_scanned, base_lookups = baseline[name]
    tag = "OK"
    if scanned > base_scanned or lookups > base_lookups:
        tag = "REGRESSION"
        failed = True
    print(f"  {name}: tuples_scanned {scanned} (baseline {base_scanned}), "
          f"index_lookups {lookups} (baseline {base_lookups}) {tag}")
sys.exit(1 if failed else 0)
PYEOF
  rm -rf "${tmp}"
  echo "== OK (work counters at or below baseline)"
}

# Datalog lint gate: every checked-in .dl program must be free of
# error-severity analyzer diagnostics (tools/lint.sh; warnings allowed,
# corpus inputs carry planted redundancy by design).
run_lint_gate() {
  local build_dir="$1"
  echo "== running datalog lint gate"
  "${ROOT}/tools/lint.sh" "${build_dir}" | tail -1
  echo "== OK (datalog lint)"
}

run_gate() {
  local sanitize="$1"
  local build_dir="${ROOT}/build-sanitize-${sanitize//,/-}"

  echo "== running tests under -fsanitize=${sanitize}"
  cd "${build_dir}"
  if [ "${DATALOG_CHECK_ALL:-0}" = "1" ]; then
    ctest --output-on-failure -j "${JOBS}"
  else
    # The thread-pool, parallel-evaluator, concurrent-relation,
    # incremental-maintenance, and differential tests all live in
    # these suites. obs_test runs the trace-invariant checks (which
    # drive the parallel engines with tracing enabled), and core_test's
    # metamorphic filter runs the minimizer fuzzer.
    ./tests/util_test
    ./tests/eval_test
    ./tests/incr_test
    ./tests/obs_test
    # The server suites are the epoch-snapshot concurrency gate: pinned
    # readers racing commit publication, worker pools racing the I/O
    # loop, and the 50-seed snapshot-isolation differential oracle.
    ./tests/server_test
    ./tests/server_oracle_test
    ./tests/core_test --gtest_filter='*MinimizeMetamorphic*'
    ./tests/integration_test \
      --gtest_filter='*DifferentialEngine*:*MethodsAgree*:*Incremental*:*TabledTopDown*'
  fi
  cd "${ROOT}"
  validate_obs_json "${build_dir}"
  run_work_counter_gate "${build_dir}"
  run_lint_gate "${build_dir}"

  echo "== OK (${sanitize})"
}

SANITIZE="${1:-thread}"
configure_and_build "${SANITIZE}"
run_gate "${SANITIZE}"

# With the default TSan gate, also fuzz the incremental engine under
# ASan+UBSan: EraseAll invalidates lazy indexes and DRed erases and
# re-adds rows within one commit, which is exactly the churn that
# use-after-free bugs hide in. TSan cannot see those; ASan can.
if [ "${SANITIZE}" = "thread" ] && [ "${DATALOG_CHECK_INCR_ASAN:-1}" = "1" ]; then
  configure_and_build "address,undefined"
  build_dir="${ROOT}/build-sanitize-address-undefined"
  echo "== running incremental fuzzer under -fsanitize=address,undefined"
  cd "${build_dir}"
  ./tests/incr_test
  # *Multiway* adds the worst-case-optimal join matrix (cyclic bodies,
  # multiway x left-deep x columnar) to the ASan pass; its id-space
  # scratch buffers and sorted-key caches churn on every replan.
  # *Bytecode* adds the VM differential matrix plus the validator fuzzer
  # (BytecodeFuzzTest), whose whole point is running hostile instruction
  # streams and mutated encodings under ASan/UBSan.
  ./tests/integration_test --gtest_filter='*Incremental*:*Multiway*:*Bytecode*'
  ./tests/eval_test --gtest_filter='*Multiway*:*Hypergraph*:*Bytecode*'
  cd "${ROOT}"
  echo "== OK (address,undefined incremental fuzzer)"
fi
