// Experiment B1 (DESIGN.md): the paper's operative claim from Section I --
// removing redundant parts reduces evaluation time because it reduces the
// number of joins. Each pair of benchmarks evaluates the same query on the
// original and on the minimized/optimized program; the counters report the
// join work (substitutions) so the "shape" (optimized <= original,
// separation growing with input) is visible regardless of machine.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace bench {
namespace {

// Example 18's pair: guarded vs plain doubly-recursive TC. The guard atom
// A(y,w) is redundant under equivalence; OptimizeUnderEquivalence removes
// it.
constexpr const char* kGuardedTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z), a(y, w).\n";

// Example 19's program; the two guard atoms are redundant.
constexpr const char* kExample19 =
    "g(x, z) :- a(x, z), c(z).\n"
    "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n";

// A linear TC with a planted uniformly-redundant atom (removable by
// Fig. 2 alone).
constexpr const char* kPlantedLinearTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- a(x, y), g(y, z), a(x, q).\n";

void RunTc(benchmark::State& state, const char* program_text, bool optimize,
           GraphShape shape) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, program_text);
  if (optimize) {
    program = MustOk(MinimizeProgram(program));
    program = MustOk(OptimizeUnderEquivalence(program)).program;
  }
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({shape, n, 2 * n, 42}, a, &edb);

  std::uint64_t substitutions = 0;
  std::size_t facts = 0;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(program, &db));
    substitutions = stats.match.substitutions;
    facts = db.NumFacts();
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(substitutions);
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["body_literals"] =
      static_cast<double>(program.TotalBodyLiterals());
}

void BM_GuardedTc_Original(benchmark::State& state) {
  RunTc(state, kGuardedTc, /*optimize=*/false, GraphShape::kChain);
}
void BM_GuardedTc_Optimized(benchmark::State& state) {
  RunTc(state, kGuardedTc, /*optimize=*/true, GraphShape::kChain);
}
BENCHMARK(BM_GuardedTc_Original)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_GuardedTc_Optimized)->RangeMultiplier(2)->Range(16, 128);

void BM_GuardedTcRandom_Original(benchmark::State& state) {
  RunTc(state, kGuardedTc, /*optimize=*/false, GraphShape::kRandom);
}
void BM_GuardedTcRandom_Optimized(benchmark::State& state) {
  RunTc(state, kGuardedTc, /*optimize=*/true, GraphShape::kRandom);
}
BENCHMARK(BM_GuardedTcRandom_Original)->RangeMultiplier(2)->Range(16, 64);
BENCHMARK(BM_GuardedTcRandom_Optimized)->RangeMultiplier(2)->Range(16, 64);

void RunExample19(benchmark::State& state, bool optimize) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kExample19);
  if (optimize) {
    program = MustOk(OptimizeUnderEquivalence(program)).program;
  }
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  PredicateId c = MustOk(symbols->LookupPredicate("c"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kChain, n}, a, &edb);
  AddUnaryFacts(n, n, 7, c, &edb);  // every node satisfies c

  std::uint64_t substitutions = 0;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(program, &db));
    substitutions = stats.match.substitutions;
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(substitutions);
}

void BM_Example19_Original(benchmark::State& state) {
  RunExample19(state, /*optimize=*/false);
}
void BM_Example19_Optimized(benchmark::State& state) {
  RunExample19(state, /*optimize=*/true);
}
BENCHMARK(BM_Example19_Original)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_Example19_Optimized)->RangeMultiplier(2)->Range(16, 128);

void RunPlanted(benchmark::State& state, bool optimize) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kPlantedLinearTc);
  if (optimize) {
    program = MustOk(MinimizeProgram(program));
  }
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kChain, n}, a, &edb);

  std::uint64_t substitutions = 0;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(program, &db));
    substitutions = stats.match.substitutions;
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(substitutions);
}

void BM_PlantedLinearTc_Original(benchmark::State& state) {
  RunPlanted(state, /*optimize=*/false);
}
void BM_PlantedLinearTc_Minimized(benchmark::State& state) {
  RunPlanted(state, /*optimize=*/true);
}
BENCHMARK(BM_PlantedLinearTc_Original)->RangeMultiplier(2)->Range(32, 512);
BENCHMARK(BM_PlantedLinearTc_Minimized)->RangeMultiplier(2)->Range(32, 512);

void RunGeneratedWorkload(benchmark::State& state, bool optimize) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 5;
  options.planted_atoms = 3;
  options.planted_rules = 2;
  Program program = MustOk(MakePlantedProgram(symbols, options)).program;
  if (optimize) {
    program = MustOk(MinimizeProgram(program));
  }
  PredicateId e0 = MustOk(symbols->LookupPredicate("e0"));
  PredicateId e1 = MustOk(symbols->LookupPredicate("e1"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, n, 2 * n, 9}, e0, &edb);
  AddGraphFacts({GraphShape::kChain, n}, e1, &edb);

  std::uint64_t substitutions = 0;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(program, &db));
    substitutions = stats.match.substitutions;
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(substitutions);
  state.counters["body_literals"] =
      static_cast<double>(program.TotalBodyLiterals());
}

void BM_PlantedProgram_Original(benchmark::State& state) {
  RunGeneratedWorkload(state, /*optimize=*/false);
}
void BM_PlantedProgram_Minimized(benchmark::State& state) {
  RunGeneratedWorkload(state, /*optimize=*/true);
}
BENCHMARK(BM_PlantedProgram_Original)->RangeMultiplier(2)->Range(16, 64);
BENCHMARK(BM_PlantedProgram_Minimized)->RangeMultiplier(2)->Range(16, 64);

}  // namespace
}  // namespace bench
}  // namespace datalog
