// Shared main() for benchmark binaries: BENCHMARK_MAIN() plus the
// `--json PATH` / `--metrics PATH` / `--trace PATH` flags (see
// bench_util.h). Linked into every bench target in place of
// benchmark::benchmark_main so all binaries expose the same surface.

#include "bench_util.h"

int main(int argc, char** argv) {
  return datalog::bench::BenchmarkMainWithJson(argc, argv);
}
