// Parallel vs sequential semi-naive evaluation. Each benchmark verifies
// once (outside the timed loop) that the parallel engine's output database
// is bit-identical to the sequential engine's before measuring, so every
// reported speedup is a speedup at equal results.
//
// Wall-clock speedup needs physical cores: on a single-core container the
// parallel engine degrades gracefully to the sequential engine's speed
// (same deterministic task stream, run by one thread).

#include <cstdlib>
#include <string>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace bench {
namespace {

constexpr const char* kLinearTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- a(x, y), g(y, z).\n";
constexpr const char* kDoubleTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

Database MakeTcEdb(const std::shared_ptr<SymbolTable>& symbols,
                   GraphShape shape, std::size_t n) {
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  Database edb(symbols);
  AddGraphFacts({shape, n, 2 * n, 23}, a, &edb);
  return edb;
}

/// Aborts unless parallel and sequential evaluation produce bit-identical
/// databases on this workload (ToString renders the sorted fact set).
void VerifyIdentical(const Program& program, const Database& edb,
                     std::size_t threads) {
  Database seq(edb.symbols()), par(edb.symbols());
  seq.UnionWith(edb);
  par.UnionWith(edb);
  MustOk(EvaluateSemiNaive(program, &seq));
  MustOk(EvaluateSemiNaiveParallel(program, &par, threads));
  if (seq.ToString() != par.ToString()) {
    std::fprintf(stderr,
                 "bench_parallel: parallel output differs from sequential "
                 "at %zu threads\n",
                 threads);
    std::abort();
  }
}

void RunTc(benchmark::State& state, const char* program_text,
           GraphShape shape, std::size_t threads) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, program_text);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb = MakeTcEdb(symbols, shape, n);
  if (threads > 0) VerifyIdentical(program, edb, threads);

  EvalStats last;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    last = threads == 0
               ? MustOk(EvaluateSemiNaive(program, &db))
               : MustOk(EvaluateSemiNaiveParallel(program, &db, threads));
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(last.match.substitutions);
  state.counters["facts"] = static_cast<double>(last.facts_derived);
  if (threads > 0) {
    state.counters["tasks"] = static_cast<double>(last.parallel_tasks);
    state.counters["match_ms"] =
        static_cast<double>(last.parallel_match_ns) / 1e6;
    state.counters["merge_ms"] = static_cast<double>(last.merge_ns) / 1e6;
  }
}

// The headline series: linear transitive closure on a random graph,
// sequential vs 1/2/4 threads. threads=0 means the sequential engine.
void BM_TcRandom_Sequential(benchmark::State& state) {
  RunTc(state, kLinearTc, GraphShape::kRandom, 0);
}
void BM_TcRandom_Parallel1(benchmark::State& state) {
  RunTc(state, kLinearTc, GraphShape::kRandom, 1);
}
void BM_TcRandom_Parallel2(benchmark::State& state) {
  RunTc(state, kLinearTc, GraphShape::kRandom, 2);
}
void BM_TcRandom_Parallel4(benchmark::State& state) {
  RunTc(state, kLinearTc, GraphShape::kRandom, 4);
}
BENCHMARK(BM_TcRandom_Sequential)->RangeMultiplier(2)->Range(64, 256);
BENCHMARK(BM_TcRandom_Parallel1)->RangeMultiplier(2)->Range(64, 256);
BENCHMARK(BM_TcRandom_Parallel2)->RangeMultiplier(2)->Range(64, 256);
BENCHMARK(BM_TcRandom_Parallel4)->RangeMultiplier(2)->Range(64, 256);

// Doubly recursive closure: two delta positions per round on top of the
// delta shards, so even tiny deltas fan out.
void BM_DoubleTcChain_Sequential(benchmark::State& state) {
  RunTc(state, kDoubleTc, GraphShape::kChain, 0);
}
void BM_DoubleTcChain_Parallel4(benchmark::State& state) {
  RunTc(state, kDoubleTc, GraphShape::kChain, 4);
}
BENCHMARK(BM_DoubleTcChain_Sequential)->RangeMultiplier(2)->Range(32, 256);
BENCHMARK(BM_DoubleTcChain_Parallel4)->RangeMultiplier(2)->Range(32, 256);

// Generated multi-rule programs (the differential-test workload at bench
// scale): many rules per round is the (rule, delta-position) fan-out the
// SCC variant also benefits from.
void RunGenerated(benchmark::State& state, std::size_t threads,
                  bool scc_order) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.num_extensional = 2;
  options.num_intentional = 4;
  options.chain_rules = 4;
  options.chain_length = 3;
  options.seed = 7;
  Program program = MustOk(MakePlantedProgram(symbols, options)).program;
  PredicateId e0 = MustOk(symbols->LookupPredicate("e0"));
  PredicateId e1 = MustOk(symbols->LookupPredicate("e1"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, n, 3 * n, 11}, e0, &edb);
  AddGraphFacts({GraphShape::kChain, n}, e1, &edb);
  if (threads > 0) VerifyIdentical(program, edb, threads);

  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats =
        threads == 0 ? MustOk(EvaluateSemiNaive(program, &db))
        : scc_order  ? MustOk(EvaluateSemiNaiveSccParallel(program, &db,
                                                           threads))
                     : MustOk(EvaluateSemiNaiveParallel(program, &db,
                                                        threads));
    benchmark::DoNotOptimize(stats);
  }
}

void BM_Generated_Sequential(benchmark::State& state) {
  RunGenerated(state, 0, false);
}
void BM_Generated_Parallel4(benchmark::State& state) {
  RunGenerated(state, 4, false);
}
void BM_Generated_SccParallel4(benchmark::State& state) {
  RunGenerated(state, 4, true);
}
BENCHMARK(BM_Generated_Sequential)->RangeMultiplier(2)->Range(32, 128);
BENCHMARK(BM_Generated_Parallel4)->RangeMultiplier(2)->Range(32, 128);
BENCHMARK(BM_Generated_SccParallel4)->RangeMultiplier(2)->Range(32, 128);

}  // namespace
}  // namespace bench
}  // namespace datalog
