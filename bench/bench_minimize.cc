// Experiment B2 (DESIGN.md): the cost of minimization itself. The paper:
// "the algorithm has an exponential running time in the worst case, but
// the time is exponential only in the size of the program, which is
// typically much smaller than the size of the database." The series sweep
// program size (rules, atoms per rule) and never touch a database.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/program_gen.h"

namespace datalog {
namespace bench {
namespace {

void BM_MinimizeRule_Example7(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Rule rule = MustParseRule(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  for (auto _ : state) {
    Rule minimized = MustOk(MinimizeRule(rule, symbols));
    benchmark::DoNotOptimize(minimized);
  }
}
BENCHMARK(BM_MinimizeRule_Example7);

/// Fig. 2 runtime vs number of rules (atoms per rule fixed).
void BM_MinimizeProgram_Rules(benchmark::State& state) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 13;
  options.num_intentional = 2;
  options.chain_rules = static_cast<std::size_t>(state.range(0));
  options.planted_atoms = 2;
  options.planted_rules = 1;
  Program program = MustOk(MakePlantedProgram(symbols, options)).program;

  MinimizeReport report;
  for (auto _ : state) {
    report = MinimizeReport();
    Program minimized = MustOk(MinimizeProgram(program, &report));
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["rules"] = static_cast<double>(program.NumRules());
  state.counters["containment_tests"] =
      static_cast<double>(report.containment_tests);
  state.counters["removed"] =
      static_cast<double>(report.atoms_removed + report.rules_removed);
}
BENCHMARK(BM_MinimizeProgram_Rules)->DenseRange(1, 9, 2);

/// Fig. 2 runtime vs body size (rule count fixed).
void BM_MinimizeProgram_BodyAtoms(benchmark::State& state) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 29;
  options.chain_rules = 2;
  options.chain_length = static_cast<std::size_t>(state.range(0));
  options.planted_atoms = 2;
  Program program = MustOk(MakePlantedProgram(symbols, options)).program;

  for (auto _ : state) {
    Program minimized = MustOk(MinimizeProgram(program));
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["body_literals"] =
      static_cast<double>(program.TotalBodyLiterals());
}
BENCHMARK(BM_MinimizeProgram_BodyAtoms)->DenseRange(2, 8, 2);

/// The program-size-vs-database-size argument: minimization cost is
/// independent of the EDB, so amortizing it over one evaluation of a
/// modest database already pays off. This benchmark reports the two
/// costs side by side.
void BM_MinimizeVsEvaluateCost(benchmark::State& state) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 3;
  options.planted_atoms = 2;
  Program program = MustOk(MakePlantedProgram(symbols, options)).program;
  for (auto _ : state) {
    Program minimized = MustOk(MinimizeProgram(program));
    benchmark::DoNotOptimize(minimized);
  }
}
BENCHMARK(BM_MinimizeVsEvaluateCost);

/// Shuffled consideration order (the result may differ, Section VII); the
/// cost profile should not.
void BM_MinimizeProgram_ShuffledOrder(benchmark::State& state) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions gen;
  gen.seed = 13;
  gen.planted_atoms = 2;
  gen.planted_rules = 1;
  Program program = MustOk(MakePlantedProgram(symbols, gen)).program;
  MinimizeOptions options;
  options.shuffle_seed = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Program minimized = MustOk(MinimizeProgram(program, nullptr, options));
    benchmark::DoNotOptimize(minimized);
  }
}
BENCHMARK(BM_MinimizeProgram_ShuffledOrder)->Arg(0)->Arg(1)->Arg(2);

/// The equivalence optimizer (Section XI) on Example 18/19 shapes.
void BM_OptimizeUnderEquivalence_Example18(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  for (auto _ : state) {
    EquivalenceOptimizeResult result =
        MustOk(OptimizeUnderEquivalence(program));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimizeUnderEquivalence_Example18);

void BM_OptimizeUnderEquivalence_Example19(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(
      symbols,
      "g(x, z) :- a(x, z), c(z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  for (auto _ : state) {
    EquivalenceOptimizeResult result =
        MustOk(OptimizeUnderEquivalence(program));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimizeUnderEquivalence_Example19);

}  // namespace
}  // namespace bench
}  // namespace datalog
