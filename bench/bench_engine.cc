// Experiment B5 (DESIGN.md): the evaluation substrate's own series --
// naive vs semi-naive fixpoint on transitive closure. Establishes that the
// engine behaves like a Datalog engine (semi-naive wins, gap grows with
// recursion depth) before any optimization claims are measured on it.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace bench {
namespace {

constexpr const char* kLinearTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- a(x, y), g(y, z).\n";
constexpr const char* kDoubleTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

template <typename Evaluator>
void RunEngine(benchmark::State& state, const char* program_text,
               GraphShape shape, Evaluator evaluate) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, program_text);
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({shape, n, 2 * n, 23}, a, &edb);

  EvalStats last;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    last = MustOk(evaluate(program, &db));
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(last.match.substitutions);
  // Named to dodge google-benchmark's built-in "iterations" field: a
  // counter with the same name made every JSON entry carry the key
  // twice, which strict parsers reject.
  state.counters["fixpoint_rounds"] = static_cast<double>(last.iterations);
}

void BM_LinearTcChain_Naive(benchmark::State& state) {
  RunEngine(state, kLinearTc, GraphShape::kChain, EvaluateNaive);
}
void BM_LinearTcChain_SemiNaive(benchmark::State& state) {
  RunEngine(state, kLinearTc, GraphShape::kChain, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcChain_Naive)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_LinearTcChain_SemiNaive)->RangeMultiplier(2)->Range(16, 128);

void BM_DoubleTcChain_Naive(benchmark::State& state) {
  RunEngine(state, kDoubleTc, GraphShape::kChain, EvaluateNaive);
}
void BM_DoubleTcChain_SemiNaive(benchmark::State& state) {
  RunEngine(state, kDoubleTc, GraphShape::kChain, EvaluateSemiNaive);
}
BENCHMARK(BM_DoubleTcChain_Naive)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_DoubleTcChain_SemiNaive)->RangeMultiplier(2)->Range(16, 128);

void BM_LinearTcRandom_SemiNaive(benchmark::State& state) {
  RunEngine(state, kLinearTc, GraphShape::kRandom, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcRandom_SemiNaive)->RangeMultiplier(2)->Range(32, 256);

void BM_LinearTcGrid_SemiNaive(benchmark::State& state) {
  RunEngine(state, kLinearTc, GraphShape::kGrid, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcGrid_SemiNaive)->RangeMultiplier(4)->Range(16, 256);

/// Compiled-plan A/B: the same workloads with the rule-compilation layer
/// ablated, so one --json run carries both the before (LegacyMatcher) and
/// after (the default compiled path) series for the TC and same-generation
/// joins.
template <typename Evaluator>
void RunEngineLegacy(benchmark::State& state, const char* program_text,
                     GraphShape shape, Evaluator evaluate) {
  SetCompiledRulePlans(false);
  RunEngine(state, program_text, shape, evaluate);
  SetCompiledRulePlans(true);
}

void BM_LinearTcChain_SemiNaive_LegacyMatcher(benchmark::State& state) {
  RunEngineLegacy(state, kLinearTc, GraphShape::kChain, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcChain_SemiNaive_LegacyMatcher)
    ->RangeMultiplier(2)
    ->Range(16, 128);

void BM_LinearTcRandom_SemiNaive_LegacyMatcher(benchmark::State& state) {
  RunEngineLegacy(state, kLinearTc, GraphShape::kRandom, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcRandom_SemiNaive_LegacyMatcher)
    ->RangeMultiplier(2)
    ->Range(32, 256);

/// Storage-backend A/B: the same workloads on the legacy row store (still
/// through compiled plans, so the delta is purely columnar layout + the
/// vectorized batch probe path, not the matcher). The knob flips before
/// RunEngine constructs anything, so every relation -- EDB and derived
/// alike -- lands on the row store (backends are chosen per relation at
/// construction).
template <typename Evaluator>
void RunEngineRowStore(benchmark::State& state, const char* program_text,
                       GraphShape shape, Evaluator evaluate) {
  SetColumnarStorage(false);
  RunEngine(state, program_text, shape, evaluate);
  SetColumnarStorage(true);
}

void BM_LinearTcChain_SemiNaive_RowStore(benchmark::State& state) {
  RunEngineRowStore(state, kLinearTc, GraphShape::kChain, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcChain_SemiNaive_RowStore)
    ->RangeMultiplier(2)
    ->Range(16, 128);

void BM_LinearTcRandom_SemiNaive_RowStore(benchmark::State& state) {
  RunEngineRowStore(state, kLinearTc, GraphShape::kRandom, EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcRandom_SemiNaive_RowStore)
    ->RangeMultiplier(2)
    ->Range(32, 256);

/// Bytecode-VM A/B: the same workloads with bytecode execution ablated,
/// so compiled plans run the struct interpreters (ApplyBatch /
/// ApplyMultiway) instead of the computed-goto VM. Everything else --
/// plans, columnar storage, indexes -- is identical, so the delta is
/// purely dispatch + the fused innermost emission loop.
template <typename Evaluator>
void RunEngineStructInterp(benchmark::State& state, const char* program_text,
                           GraphShape shape, Evaluator evaluate) {
  SetBytecodeExecution(false);
  RunEngine(state, program_text, shape, evaluate);
  SetBytecodeExecution(true);
}

void BM_LinearTcChain_SemiNaive_StructInterp(benchmark::State& state) {
  RunEngineStructInterp(state, kLinearTc, GraphShape::kChain,
                        EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcChain_SemiNaive_StructInterp)
    ->RangeMultiplier(2)
    ->Range(16, 128);

void BM_LinearTcRandom_SemiNaive_StructInterp(benchmark::State& state) {
  RunEngineStructInterp(state, kLinearTc, GraphShape::kRandom,
                        EvaluateSemiNaive);
}
BENCHMARK(BM_LinearTcRandom_SemiNaive_StructInterp)
    ->RangeMultiplier(2)
    ->Range(32, 256);

/// Same-generation: the classic non-linear two-sided join; each delta pass
/// probes two indexed body atoms, so per-probe key-buffer reuse dominates.
constexpr const char* kSameGen =
    "sg(x, y) :- flat(x, y).\n"
    "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n";

template <typename Evaluator>
void RunSameGen(benchmark::State& state, Evaluator evaluate) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kSameGen);
  PredicateId up = MustOk(symbols->LookupPredicate("up"));
  PredicateId down = MustOk(symbols->LookupPredicate("down"));
  PredicateId flat = MustOk(symbols->LookupPredicate("flat"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kBinaryTree, n, 2 * n, 7}, up, &edb);
  AddGraphFacts({GraphShape::kBinaryTree, n, 2 * n, 7}, down, &edb);
  AddGraphFacts({GraphShape::kRandom, n, n, 13}, flat, &edb);

  EvalStats last;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    last = MustOk(evaluate(program, &db));
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(last.match.substitutions);
  state.counters["fixpoint_rounds"] = static_cast<double>(last.iterations);
}

void BM_SameGen_SemiNaive(benchmark::State& state) {
  RunSameGen(state, EvaluateSemiNaive);
}
BENCHMARK(BM_SameGen_SemiNaive)->RangeMultiplier(2)->Range(32, 256);

void BM_SameGen_SemiNaive_LegacyMatcher(benchmark::State& state) {
  SetCompiledRulePlans(false);
  RunSameGen(state, EvaluateSemiNaive);
  SetCompiledRulePlans(true);
}
BENCHMARK(BM_SameGen_SemiNaive_LegacyMatcher)
    ->RangeMultiplier(2)
    ->Range(32, 256);

void BM_SameGen_SemiNaive_StructInterp(benchmark::State& state) {
  SetBytecodeExecution(false);
  RunSameGen(state, EvaluateSemiNaive);
  SetBytecodeExecution(true);
}
BENCHMARK(BM_SameGen_SemiNaive_StructInterp)
    ->RangeMultiplier(2)
    ->Range(32, 256);

void BM_SameGen_SemiNaive_RowStore(benchmark::State& state) {
  SetColumnarStorage(false);
  RunSameGen(state, EvaluateSemiNaive);
  SetColumnarStorage(true);
}
BENCHMARK(BM_SameGen_SemiNaive_RowStore)
    ->RangeMultiplier(2)
    ->Range(32, 256);

/// SCC-ordered vs flat semi-naive on a layered program: the upper layers
/// must not pay for the closure's delta rounds.
constexpr const char* kLayered =
    "reach(x, z) :- a(x, z).\n"
    "reach(x, z) :- a(x, y), reach(y, z).\n"
    "pairs(x, z) :- reach(x, z), reach(z, x).\n"
    "tri(x) :- pairs(x, y), a(y, x).\n";

void BM_Layered_SemiNaive(benchmark::State& state) {
  RunEngine(state, kLayered, GraphShape::kRandom, EvaluateSemiNaive);
}
void BM_Layered_SccSemiNaive(benchmark::State& state) {
  RunEngine(state, kLayered, GraphShape::kRandom, EvaluateSemiNaiveScc);
}
BENCHMARK(BM_Layered_SemiNaive)->RangeMultiplier(2)->Range(32, 128);
BENCHMARK(BM_Layered_SccSemiNaive)->RangeMultiplier(2)->Range(32, 128);

/// Stratified negation overhead: unreachable-nodes over the closure.
void BM_StratifiedUnreachable(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(
      symbols,
      "reach(y) :- source(x), a(x, y).\n"
      "reach(y) :- reach(x), a(x, y).\n"
      "unreached(x) :- node(x), not reach(x).\n");
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  PredicateId node = MustOk(symbols->LookupPredicate("node"));
  PredicateId source = MustOk(symbols->LookupPredicate("source"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, n, 2 * n, 31}, a, &edb);
  for (std::size_t i = 0; i < n; ++i) {
    edb.AddFact(node, {Value::Int(static_cast<std::int64_t>(i))});
  }
  edb.AddFact(source, {Value::Int(0)});

  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateStratified(program, &db));
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_StratifiedUnreachable)->RangeMultiplier(2)->Range(64, 512);

}  // namespace
}  // namespace bench
}  // namespace datalog

int main(int argc, char** argv) {
  return datalog::bench::BenchmarkMainWithJson(argc, argv);
}
