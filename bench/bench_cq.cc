// Experiment B6 (DESIGN.md): the non-recursive baseline. On non-recursive
// rules Fig. 1 (chase-based) and Chandra-Merlin core computation
// (homomorphism-based) must produce the same-size bodies; this bench
// compares their costs, and shows the chase's extra power (and price) on
// the recursive Example 7 rule.

#include <random>

#include "benchmark/benchmark.h"
#include "bench_util.h"

namespace datalog {
namespace bench {
namespace {

/// A non-recursive rule with n chain atoms plus n folded duplicates, all
/// removable by both minimizers.
Rule MakeFoldableRule(const std::shared_ptr<SymbolTable>& symbols, int n) {
  PredicateId a = MustOk(symbols->InternPredicate("a", 2));
  PredicateId head = MustOk(symbols->InternPredicate("p", 2));
  auto var = [&](const std::string& name) {
    return Term::Variable(symbols->InternVariable(name));
  };
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    body.push_back(
        Atom(a, {var("x" + std::to_string(i)), var("x" + std::to_string(i + 1))}));
  }
  for (int i = 0; i < n; ++i) {
    // A folded copy: a(xi, yi) with yi fresh, subsumed by a(xi, xi+1).
    body.push_back(
        Atom(a, {var("x" + std::to_string(i)), var("y" + std::to_string(i))}));
  }
  return Rule::Positive(Atom(head, {var("x0"), var("x" + std::to_string(n))}),
                        std::move(body));
}

void BM_MinimizeCq_Foldable(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Rule rule = MakeFoldableRule(symbols, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rule core = MustOk(MinimizeCq(rule, symbols));
    benchmark::DoNotOptimize(core);
  }
  state.counters["body_atoms"] = static_cast<double>(rule.body().size());
}
BENCHMARK(BM_MinimizeCq_Foldable)->DenseRange(2, 8, 2);

void BM_MinimizeRuleFig1_Foldable(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Rule rule = MakeFoldableRule(symbols, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rule minimized = MustOk(MinimizeRule(rule, symbols));
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["body_atoms"] = static_cast<double>(rule.body().size());
}
BENCHMARK(BM_MinimizeRuleFig1_Foldable)->DenseRange(2, 8, 2);

void BM_CqContainment_Foldable(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Rule q1 = MakeFoldableRule(symbols, static_cast<int>(state.range(0)));
  Rule q2 = MustOk(MinimizeCq(q1, symbols));
  for (auto _ : state) {
    bool hom = MustOk(HasContainmentMapping(q1, q2));
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_CqContainment_Foldable)->DenseRange(2, 8, 2);

void BM_Fig1OnRecursiveExample7(benchmark::State& state) {
  // Recursive rule: Fig. 1 removes a(w,y) (two chase steps); MinimizeCq
  // cannot. The pair of benches shows the cost of that extra power.
  auto symbols = MakeSymbols();
  Rule rule = MustParseRule(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  for (auto _ : state) {
    Rule minimized = MustOk(MinimizeRule(rule, symbols));
    benchmark::DoNotOptimize(minimized);
  }
}
BENCHMARK(BM_Fig1OnRecursiveExample7);

void BM_CqOnRecursiveExample7(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Rule rule = MustParseRule(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  for (auto _ : state) {
    Rule core = MustOk(MinimizeCq(rule, symbols));
    benchmark::DoNotOptimize(core);
  }
}
BENCHMARK(BM_CqOnRecursiveExample7);

}  // namespace
}  // namespace bench
}  // namespace datalog
