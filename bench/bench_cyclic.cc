// The cyclic-query series: worst-case-optimal multiway joins vs the
// greedy left-deep schedule on the workload family where the gap is
// provable (triangles, k-cycles, 4-cliques, dense same-generation --
// cyclic join hypergraphs of width >= 2, see docs/multiway_joins.md).
// Each shape runs as an A/B pair under SetMultiwayJoins(true/false) over
// identical facts; the `probes` counter (index seeks + candidate tuples
// inspected) is the work metric CI gates on: on the hub-skewed triangle
// at n=256 the multiway plan must do at least 3x fewer probes, because a
// left-deep plan enumerates every hub wedge while the intersection only
// pays min(deg) per edge pair.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/cyclic_gen.h"

namespace datalog {
namespace bench {
namespace {

/// Restores the multiway knob whatever path the benchmark takes.
struct MultiwayKnob {
  explicit MultiwayKnob(bool on) { SetMultiwayJoins(on); }
  ~MultiwayKnob() { SetMultiwayJoins(true); }
};

/// Restores the bytecode knob whatever path the benchmark takes.
struct BytecodeKnob {
  explicit BytecodeKnob(bool on) { SetBytecodeExecution(on); }
  ~BytecodeKnob() { SetBytecodeExecution(true); }
};

void RunCyclic(benchmark::State& state, const CyclicOptions& options,
               bool multiway) {
  MultiwayKnob knob(multiway);
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, CyclicProgramText(options));
  Database edb(symbols);
  if (options.shape == CyclicShape::kDenseSameGen) {
    AddDenseSameGenFacts(options, MustOk(symbols->LookupPredicate("up")),
                         MustOk(symbols->LookupPredicate("down")),
                         MustOk(symbols->LookupPredicate("flat")), &edb);
  } else {
    AddCyclicFacts(options, MustOk(symbols->LookupPredicate("e")), &edb);
  }

  EvalStats last;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    last = MustOk(EvaluateSemiNaive(program, &db));
    benchmark::DoNotOptimize(db);
  }
  state.counters["probes"] = static_cast<double>(last.match.index_lookups +
                                                 last.match.tuples_scanned);
  state.counters["index_lookups"] =
      static_cast<double>(last.match.index_lookups);
  state.counters["tuples_scanned"] =
      static_cast<double>(last.match.tuples_scanned);
  state.counters["joins"] = static_cast<double>(last.match.substitutions);
}

CyclicOptions GraphOptions(CyclicShape shape, std::int64_t n) {
  CyclicOptions options;
  options.shape = shape;
  options.num_nodes = static_cast<std::size_t>(n);
  options.seed = 97;
  return options;
}

void BM_Triangle_Multiway(benchmark::State& state) {
  RunCyclic(state, GraphOptions(CyclicShape::kTriangle, state.range(0)),
            /*multiway=*/true);
}
void BM_Triangle_LeftDeep(benchmark::State& state) {
  RunCyclic(state, GraphOptions(CyclicShape::kTriangle, state.range(0)),
            /*multiway=*/false);
}
BENCHMARK(BM_Triangle_Multiway)->RangeMultiplier(2)->Range(64, 256);
BENCHMARK(BM_Triangle_LeftDeep)->RangeMultiplier(2)->Range(64, 256);

// Bytecode-VM A/B on the leapfrog path: the multiway triangle with the
// VM ablated, so the kSeek/kSeekEmitAll program and the struct
// ApplyMultiway interpreter can be compared on identical plans.
void BM_Triangle_Multiway_StructInterp(benchmark::State& state) {
  BytecodeKnob knob(false);
  RunCyclic(state, GraphOptions(CyclicShape::kTriangle, state.range(0)),
            /*multiway=*/true);
}
BENCHMARK(BM_Triangle_Multiway_StructInterp)->RangeMultiplier(2)->Range(64, 256);

void BM_KCycle_Multiway(benchmark::State& state) {
  CyclicOptions options = GraphOptions(CyclicShape::kKCycle, state.range(0));
  options.cycle_length = 4;
  RunCyclic(state, options, /*multiway=*/true);
}
void BM_KCycle_LeftDeep(benchmark::State& state) {
  CyclicOptions options = GraphOptions(CyclicShape::kKCycle, state.range(0));
  options.cycle_length = 4;
  RunCyclic(state, options, /*multiway=*/false);
}
BENCHMARK(BM_KCycle_Multiway)->RangeMultiplier(2)->Range(64, 256);
BENCHMARK(BM_KCycle_LeftDeep)->RangeMultiplier(2)->Range(64, 256);

void BM_Clique_Multiway(benchmark::State& state) {
  RunCyclic(state, GraphOptions(CyclicShape::kClique, state.range(0)),
            /*multiway=*/true);
}
void BM_Clique_LeftDeep(benchmark::State& state) {
  RunCyclic(state, GraphOptions(CyclicShape::kClique, state.range(0)),
            /*multiway=*/false);
}
BENCHMARK(BM_Clique_Multiway)->RangeMultiplier(2)->Range(32, 128);
BENCHMARK(BM_Clique_LeftDeep)->RangeMultiplier(2)->Range(32, 128);

// Dense same-generation: the recursive rule's 4-atom body is a 4-cycle
// in the hypergraph. The range is the tree depth at fanout 3.
void BM_SameGen_Multiway(benchmark::State& state) {
  CyclicOptions options;
  options.shape = CyclicShape::kDenseSameGen;
  options.depth = static_cast<std::size_t>(state.range(0));
  options.fanout = 3;
  RunCyclic(state, options, /*multiway=*/true);
}
void BM_SameGen_LeftDeep(benchmark::State& state) {
  CyclicOptions options;
  options.shape = CyclicShape::kDenseSameGen;
  options.depth = static_cast<std::size_t>(state.range(0));
  options.fanout = 3;
  RunCyclic(state, options, /*multiway=*/false);
}
BENCHMARK(BM_SameGen_Multiway)->DenseRange(3, 4);
BENCHMARK(BM_SameGen_LeftDeep)->DenseRange(3, 4);

}  // namespace
}  // namespace bench
}  // namespace datalog

int main(int argc, char** argv) {
  return datalog::bench::BenchmarkMainWithJson(argc, argv,
                                               "BENCH_cyclic.json");
}
