// Ablation benches for the two engine design choices DESIGN.md calls out:
// greedy join ordering (most-bound / smallest-relation first) and lazy
// per-column hash indexes. Each pair runs the same workload with the
// feature on and off; results are identical, cost is not.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace bench {
namespace {

constexpr const char* kSelective =
    "out(x, z) :- big(x, y), big(y, z), tiny(0, x).\n";

void RunSelective(benchmark::State& state, bool greedy) {
  SetGreedyJoinOrdering(greedy);
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kSelective);
  PredicateId big = MustOk(symbols->LookupPredicate("big"));
  PredicateId tiny = MustOk(symbols->LookupPredicate("tiny"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, n, 4 * n, 11}, big, &edb);
  edb.AddFact(tiny, {Value::Int(0), Value::Int(1)});

  std::uint64_t scanned = 0;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(program, &db));
    scanned = stats.match.tuples_scanned;
    benchmark::DoNotOptimize(db);
  }
  SetGreedyJoinOrdering(true);
  state.counters["tuples_scanned"] = static_cast<double>(scanned);
}

void BM_JoinOrder_Greedy(benchmark::State& state) {
  RunSelective(state, /*greedy=*/true);
}
void BM_JoinOrder_Textual(benchmark::State& state) {
  RunSelective(state, /*greedy=*/false);
}
BENCHMARK(BM_JoinOrder_Greedy)->RangeMultiplier(2)->Range(64, 256);
BENCHMARK(BM_JoinOrder_Textual)->RangeMultiplier(2)->Range(64, 256);

void RunTc(benchmark::State& state, bool indexed) {
  SetIndexLookups(indexed);
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols,
                                     "g(x, z) :- a(x, z).\n"
                                     "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kChain, n}, a, &edb);

  std::uint64_t scanned = 0;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(program, &db));
    scanned = stats.match.tuples_scanned;
    benchmark::DoNotOptimize(db);
  }
  SetIndexLookups(true);
  state.counters["tuples_scanned"] = static_cast<double>(scanned);
}

void BM_Index_Hash(benchmark::State& state) { RunTc(state, /*indexed=*/true); }
void BM_Index_Scan(benchmark::State& state) { RunTc(state, /*indexed=*/false); }
BENCHMARK(BM_Index_Hash)->RangeMultiplier(2)->Range(32, 128);
BENCHMARK(BM_Index_Scan)->RangeMultiplier(2)->Range(32, 128);

}  // namespace
}  // namespace bench
}  // namespace datalog
