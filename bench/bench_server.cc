// Datalog server throughput and latency over a live AF_UNIX socket.
//
// BM_ServerPing and BM_ServerQuery measure single-client round-trip
// latency through the full stack (framing, poll loop, worker dispatch,
// snapshot query, response). BM_ServerCommitPair measures the write path:
// one insert+commit followed by the retract+commit that undoes it, so the
// loop is steady-state. BM_ServerMixedQps is the headline number: C
// parallel clients each running a 90/10 read/write mix against W workers;
// items_per_second is the sustained request throughput (QPS).
//
// Emits BENCH_server.json by default (override with --json PATH).

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"

namespace datalog {
namespace bench {
namespace {

constexpr const char* kTc =
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n";

std::string BenchSocketPath(const std::string& name) {
  return "/tmp/dlbench_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

/// A chain of n edges: a view with O(n^2) path facts to query against.
std::string ChainFacts(int n) {
  std::string facts;
  for (int i = 0; i < n; ++i) {
    facts += "edge(" + std::to_string(i) + ", " + std::to_string(i + 1) +
             "). ";
  }
  return facts;
}

std::unique_ptr<DatalogServer> StartBenchServer(const std::string& name,
                                                std::size_t workers, int n) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kTc);
  Parser parser(symbols);
  Database edb = MustOk(ParseDatabase(symbols, ChainFacts(n)));
  ServerOptions options;
  options.socket_path = BenchSocketPath(name);
  options.num_workers = workers;
  return MustOk(DatalogServer::Start(std::move(program), std::move(edb),
                                     options));
}

void BM_ServerPing(benchmark::State& state) {
  auto server = StartBenchServer("ping", 2, 32);
  DatalogClient client = MustOk(DatalogClient::Connect(server->socket_path()));
  for (auto _ : state) {
    Reply reply = MustOk(client.Ping());
    benchmark::DoNotOptimize(reply.epoch);
  }
  state.SetItemsProcessed(state.iterations());
  client.Close();
  server->Stop();
}
BENCHMARK(BM_ServerPing);

void BM_ServerQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto server =
      StartBenchServer("query_n" + std::to_string(n), 2, n);
  DatalogClient client = MustOk(DatalogClient::Connect(server->socket_path()));
  for (auto _ : state) {
    Reply reply = MustOk(client.Query("path(1, x)"));
    benchmark::DoNotOptimize(reply.body);
  }
  state.SetItemsProcessed(state.iterations());
  client.Close();
  server->Stop();
}
BENCHMARK(BM_ServerQuery)->ArgNames({"n"})->Arg(32)->Arg(128);

void BM_ServerCommitPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto server =
      StartBenchServer("commit_n" + std::to_string(n), 2, n);
  DatalogClient client = MustOk(DatalogClient::Connect(server->socket_path()));
  const std::string tail_edge = "edge(" + std::to_string(n + 10) + ", " +
                                std::to_string(n + 11) + ").";
  for (auto _ : state) {
    MustOk(client.Insert(tail_edge));
    Reply in = MustOk(client.Commit());
    MustOk(client.Retract(tail_edge));
    Reply out = MustOk(client.Commit());
    benchmark::DoNotOptimize(out.epoch);
  }
  // Two published epochs per iteration.
  state.SetItemsProcessed(2 * state.iterations());
  client.Close();
  server->Stop();
}
BENCHMARK(BM_ServerCommitPair)->ArgNames({"n"})->Arg(32)->Arg(128);

/// One benchmark iteration = every client thread completing `kOpsPerRound`
/// requests (90% snapshot queries, 10% insert+commit pairs), so
/// items_per_second is the sustained mixed-workload QPS.
void BM_ServerMixedQps(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  constexpr int kOpsPerRound = 50;
  auto server = StartBenchServer(
      "mixed_w" + std::to_string(workers) + "_c" + std::to_string(clients),
      workers, 64);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&server, c] {
        DatalogClient client =
            MustOk(DatalogClient::Connect(server->socket_path()));
        for (int i = 0; i < kOpsPerRound; ++i) {
          if (i % 10 == 9) {  // write: private edge, committed and undone
            const std::string fact = "edge(" + std::to_string(1000 + c) +
                                     ", " + std::to_string(2000 + i) + ").";
            MustOk(client.Insert(fact));
            MustOk(client.Commit());
            MustOk(client.Retract(fact));
            MustOk(client.Commit());
          } else {  // read from the pinned snapshot
            Reply reply = MustOk(client.Query("path(1, x)"));
            benchmark::DoNotOptimize(reply.body);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients) * kOpsPerRound);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["clients"] = static_cast<double>(clients);
  server->Stop();
}
BENCHMARK(BM_ServerMixedQps)
    ->ArgNames({"workers", "clients"})
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({4, 4})
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace datalog

int main(int argc, char** argv) {
  return datalog::bench::BenchmarkMainWithJson(argc, argv,
                                               "BENCH_server.json");
}
