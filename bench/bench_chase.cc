// Experiment B4 (DESIGN.md): cost of the decision machinery itself --
// uniform containment (always terminating), the combined [P,T] chase, the
// Fig. 3 preservation procedure, and the full Section X recipe.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/program_gen.h"

namespace datalog {
namespace bench {
namespace {

void BM_UniformContainment_Tc(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program p1 = MustParseProgram(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Program p2 = MustParseProgram(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  for (auto _ : state) {
    bool contained = MustOk(UniformlyContains(p1, p2));
    benchmark::DoNotOptimize(contained);
  }
}
BENCHMARK(BM_UniformContainment_Tc);

void BM_UniformContainment_GeneratedPrograms(benchmark::State& state) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 21;
  options.chain_rules = static_cast<std::size_t>(state.range(0));
  options.planted_atoms = 0;
  options.planted_rules = 0;
  Program program = MustOk(MakePlantedProgram(symbols, options)).program;
  for (auto _ : state) {
    bool contained = MustOk(UniformlyContains(program, program));
    benchmark::DoNotOptimize(contained);
  }
  state.counters["rules"] = static_cast<double>(program.NumRules());
}
BENCHMARK(BM_UniformContainment_GeneratedPrograms)->DenseRange(1, 7, 2);

void BM_Chase_Example11(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program p1 = MustParseProgram(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = MustParseTgds(symbols, "g(x, z) -> a(x, w).");
  Parser parser(symbols);
  Database frozen = MustOk(ParseDatabase(symbols, "g(101, 102). g(102, 103)."));
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(frozen);
    ChaseResult r = MustOk(Chase(p1, tgds, &db));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Chase_Example11);

void BM_Chase_NonTerminatingBudget(benchmark::State& state) {
  // Cost of hitting the budget on a chase that never terminates (the
  // Section VIII caveat): the price of a kUnknown verdict.
  auto symbols = MakeSymbols();
  Program empty(symbols);
  std::vector<Tgd> tgds = MustParseTgds(symbols, "g(x, y) -> g(y, w).");
  ChaseBudget budget;
  budget.max_rounds = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Database db = MustOk(ParseDatabase(symbols, "g(1, 2)."));
    ChaseResult r = MustOk(Chase(empty, tgds, &db, budget));
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(budget.max_rounds);
}
BENCHMARK(BM_Chase_NonTerminatingBudget)->Arg(8)->Arg(16)->Arg(32);

void BM_Preservation_Example14(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program p1 = MustParseProgram(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = MustParseTgds(symbols, "g(x, z) -> a(x, w).");
  for (auto _ : state) {
    ProofOutcome outcome = MustOk(PreservesNonRecursively(p1, tgds));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_Preservation_Example14);

void BM_Preservation_MultiAtomLhs(benchmark::State& state) {
  // Example 15: combination count grows with the number of intentional
  // LHS atoms (rules + trivial per atom).
  auto symbols = MakeSymbols();
  Program p = MustParseProgram(symbols,
                               "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds =
      MustParseTgds(symbols, "g(x, y), g(y, z) -> a(y, w).");
  for (auto _ : state) {
    ProofOutcome outcome = MustOk(PreservesNonRecursively(p, tgds));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_Preservation_MultiAtomLhs);

void BM_FullRecipe_Example18(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program p1 = MustParseProgram(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Program p2 = MustParseProgram(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = MustParseTgds(symbols, "g(x, z) -> a(x, w).");
  for (auto _ : state) {
    EquivalenceProof proof = MustOk(ProveEquivalentWithTgds(p1, p2, tgds));
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_FullRecipe_Example18);

}  // namespace
}  // namespace bench
}  // namespace datalog
