#ifndef DATALOG_BENCH_BENCH_UTIL_H_
#define DATALOG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "benchmark/benchmark.h"
#include "datalog.h"

namespace datalog {
namespace bench {

inline std::shared_ptr<SymbolTable> MakeSymbols() {
  return std::make_shared<SymbolTable>();
}

/// Parses or aborts (benchmark setup code; failures are programming
/// errors, not measurements).
inline Program MustParseProgram(const std::shared_ptr<SymbolTable>& symbols,
                                std::string_view text) {
  Parser parser(symbols);
  Result<Program> p = parser.ParseProgram(text);
  if (!p.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 p.status().ToString().c_str());
    std::abort();
  }
  return std::move(p).value();
}

inline Rule MustParseRule(const std::shared_ptr<SymbolTable>& symbols,
                          std::string_view text) {
  Parser parser(symbols);
  Result<Rule> r = parser.ParseRule(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

inline std::vector<Tgd> MustParseTgds(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  Parser parser(symbols);
  Result<std::vector<Tgd>> t = parser.ParseTgds(text);
  if (!t.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 t.status().ToString().c_str());
    std::abort();
  }
  return std::move(t).value();
}

inline Atom MustParseQuery(const std::shared_ptr<SymbolTable>& symbols,
                           std::string_view text) {
  Parser parser(symbols);
  Result<Atom> a = parser.ParseQuery(text);
  if (!a.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 a.status().ToString().c_str());
    std::abort();
  }
  return std::move(a).value();
}

template <typename T>
inline T MustOk(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup error: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// main() for benchmark binaries that accept `--json PATH` as shorthand
/// for --benchmark_out=PATH --benchmark_out_format=json (console output
/// is unchanged; the JSON goes to the file). When `default_json` is
/// non-null the binary emits JSON there even without the flag, so CI
/// collects results by just running it.
inline int BenchmarkMainWithJson(int argc, char** argv,
                                 const char* default_json = nullptr) {
  std::vector<std::string> args;
  std::string json_path = default_json == nullptr ? "" : default_json;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json expects a path\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> ptrs;
  ptrs.reserve(args.size());
  for (std::string& arg : args) ptrs.push_back(arg.data());
  int adjusted_argc = static_cast<int>(ptrs.size());
  benchmark::Initialize(&adjusted_argc, ptrs.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, ptrs.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace datalog

#endif  // DATALOG_BENCH_BENCH_UTIL_H_
