#ifndef DATALOG_BENCH_BENCH_UTIL_H_
#define DATALOG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "benchmark/benchmark.h"
#include "datalog.h"

namespace datalog {
namespace bench {

inline std::shared_ptr<SymbolTable> MakeSymbols() {
  return std::make_shared<SymbolTable>();
}

/// Parses or aborts (benchmark setup code; failures are programming
/// errors, not measurements).
inline Program MustParseProgram(const std::shared_ptr<SymbolTable>& symbols,
                                std::string_view text) {
  Parser parser(symbols);
  Result<Program> p = parser.ParseProgram(text);
  if (!p.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 p.status().ToString().c_str());
    std::abort();
  }
  return std::move(p).value();
}

inline Rule MustParseRule(const std::shared_ptr<SymbolTable>& symbols,
                          std::string_view text) {
  Parser parser(symbols);
  Result<Rule> r = parser.ParseRule(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

inline std::vector<Tgd> MustParseTgds(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  Parser parser(symbols);
  Result<std::vector<Tgd>> t = parser.ParseTgds(text);
  if (!t.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 t.status().ToString().c_str());
    std::abort();
  }
  return std::move(t).value();
}

inline Atom MustParseQuery(const std::shared_ptr<SymbolTable>& symbols,
                           std::string_view text) {
  Parser parser(symbols);
  Result<Atom> a = parser.ParseQuery(text);
  if (!a.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 a.status().ToString().c_str());
    std::abort();
  }
  return std::move(a).value();
}

template <typename T>
inline T MustOk(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup error: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// main() for benchmark binaries that accept `--json PATH` as shorthand
/// for --benchmark_out=PATH --benchmark_out_format=json (console output
/// is unchanged; the JSON goes to the file). When `default_json` is
/// non-null the binary emits JSON there even without the flag, so CI
/// collects results by just running it.
///
/// Also accepts the observability flags:
///   --metrics PATH   enable the MetricsRegistry for the run and write the
///                    flat metrics JSON to PATH afterwards
///   --trace PATH     enable the Tracer and write Chrome trace-event JSON
///                    to PATH (beware: traces of a full benchmark run are
///                    large; prefer --benchmark_filter to narrow the run)
inline int BenchmarkMainWithJson(int argc, char** argv,
                                 const char* default_json = nullptr) {
  std::vector<std::string> args;
  std::string json_path = default_json == nullptr ? "" : default_json;
  std::string metrics_path;
  std::string trace_path;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg(argv[i]);
    std::string* path_flag = arg == "--json"      ? &json_path
                             : arg == "--metrics" ? &metrics_path
                             : arg == "--trace"   ? &trace_path
                                                  : nullptr;
    if (path_flag != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a path\n", argv[i]);
        return 2;
      }
      *path_flag = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> ptrs;
  ptrs.reserve(args.size());
  for (std::string& arg : args) ptrs.push_back(arg.data());
  int adjusted_argc = static_cast<int>(ptrs.size());
  benchmark::Initialize(&adjusted_argc, ptrs.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, ptrs.data())) {
    return 1;
  }
  if (!metrics_path.empty()) MetricsRegistry::Get().Enable();
  if (!trace_path.empty()) Tracer::Get().Enable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int code = 0;
  if (!trace_path.empty() && !Tracer::Get().WriteJsonFile(trace_path)) {
    code = 1;
  }
  if (!metrics_path.empty() &&
      !MetricsRegistry::Get().WriteJsonFile(metrics_path)) {
    code = 1;
  }
  return code;
}

}  // namespace bench
}  // namespace datalog

#endif  // DATALOG_BENCH_BENCH_UTIL_H_
