#ifndef DATALOG_BENCH_BENCH_UTIL_H_
#define DATALOG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "datalog.h"

namespace datalog {
namespace bench {

inline std::shared_ptr<SymbolTable> MakeSymbols() {
  return std::make_shared<SymbolTable>();
}

/// Parses or aborts (benchmark setup code; failures are programming
/// errors, not measurements).
inline Program MustParseProgram(const std::shared_ptr<SymbolTable>& symbols,
                                std::string_view text) {
  Parser parser(symbols);
  Result<Program> p = parser.ParseProgram(text);
  if (!p.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 p.status().ToString().c_str());
    std::abort();
  }
  return std::move(p).value();
}

inline Rule MustParseRule(const std::shared_ptr<SymbolTable>& symbols,
                          std::string_view text) {
  Parser parser(symbols);
  Result<Rule> r = parser.ParseRule(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

inline std::vector<Tgd> MustParseTgds(
    const std::shared_ptr<SymbolTable>& symbols, std::string_view text) {
  Parser parser(symbols);
  Result<std::vector<Tgd>> t = parser.ParseTgds(text);
  if (!t.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 t.status().ToString().c_str());
    std::abort();
  }
  return std::move(t).value();
}

inline Atom MustParseQuery(const std::shared_ptr<SymbolTable>& symbols,
                           std::string_view text) {
  Parser parser(symbols);
  Result<Atom> a = parser.ParseQuery(text);
  if (!a.ok()) {
    std::fprintf(stderr, "bench setup parse error: %s\n",
                 a.status().ToString().c_str());
    std::abort();
  }
  return std::move(a).value();
}

template <typename T>
inline T MustOk(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup error: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace bench
}  // namespace datalog

#endif  // DATALOG_BENCH_BENCH_UTIL_H_
