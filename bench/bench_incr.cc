// Incremental maintenance vs full recomputation, at varying delta sizes.
//
// Each BM_IncrCommitPair iteration inserts a batch of `delta` edges into
// a maintained transitive-closure view and then retracts them -- two
// real incremental commits (an insertion fixpoint and a DRed deletion
// pass) that return the view to its baseline, so the loop is
// steady-state. BM_FullRecompute is the alternative being avoided: one
// from-scratch semi-naive evaluation of the same program and base. The
// `work_speedup` counter reports from-scratch joins over per-commit
// joins; wall-clock speedup is the ratio of the two benchmarks' times.
//
// Emits BENCH_incr.json by default (override with --json PATH).

#include <cstdint>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"

namespace datalog {
namespace bench {
namespace {

constexpr const char* kTc =
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n";

Tuple Edge(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

/// A chain of `n` edges with a back edge every n/8 nodes: deep recursion,
/// a quadratic-ish fixpoint, and alternate derivations for DRed to find.
Database MakeChainEdb(const std::shared_ptr<SymbolTable>& symbols,
                      PredicateId edge, std::int64_t n) {
  Database edb(symbols);
  for (std::int64_t i = 0; i < n; ++i) edb.AddFact(edge, Edge(i, i + 1));
  for (std::int64_t i = n / 8; i < n; i += n / 8) {
    edb.AddFact(edge, Edge(i, i - n / 8));
  }
  return edb;
}

/// The delta batch: `delta` edges extending the chain past node n. Their
/// insertion derives (and their retraction overdeletes) about delta * n
/// path facts -- work proportional to the change's footprint, which is
/// the regime incremental maintenance is for. (Retracting an edge near
/// the chain *head* instead would overdelete nearly the whole view and
/// cost about as much as recomputing -- DRed's documented worst case.)
std::vector<std::pair<PredicateId, Tuple>> MakeDelta(PredicateId edge,
                                                     std::int64_t n,
                                                     std::int64_t delta) {
  std::vector<std::pair<PredicateId, Tuple>> batch;
  for (std::int64_t k = 0; k < delta; ++k) {
    batch.emplace_back(edge, Edge(n + k, n + k + 1));
  }
  return batch;
}

void BM_IncrCommitPair(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kTc);
  PredicateId edge = MustOk(symbols->LookupPredicate("edge"));
  const std::int64_t n = state.range(0);
  const std::int64_t delta = state.range(1);
  MaterializedView view = MustOk(MaterializedView::Create(
      program, MakeChainEdb(symbols, edge, n)));
  const double full_joins =
      static_cast<double>(view.initial_stats().match.substitutions);
  auto batch = MakeDelta(edge, n, delta);

  CommitStats total;
  for (auto _ : state) {
    total.Add(MustOk(view.Apply(batch, {})));  // insert the batch
    total.Add(MustOk(view.Apply({}, batch)));  // retract it again
  }
  const double commits = 2.0 * static_cast<double>(state.iterations());
  const double joins_per_commit =
      static_cast<double>(total.TotalSubstitutions()) / commits;
  state.counters["joins_per_commit"] = joins_per_commit;
  state.counters["joins_full"] = full_joins;
  state.counters["work_speedup"] =
      joins_per_commit > 0 ? full_joins / joins_per_commit : 0;
}
BENCHMARK(BM_IncrCommitPair)
    ->ArgNames({"n", "delta"})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 16})
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({256, 16})
    ->Args({256, 64});

void BM_FullRecompute(benchmark::State& state) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kTc);
  PredicateId edge = MustOk(symbols->LookupPredicate("edge"));
  const std::int64_t n = state.range(0);
  Database edb = MakeChainEdb(symbols, edge, n);

  EvalStats last;
  for (auto _ : state) {
    Database db(symbols);
    db.UnionWith(edb);
    last = MustOk(EvaluateSemiNaiveScc(program, &db));
    benchmark::DoNotOptimize(db);
  }
  state.counters["joins"] = static_cast<double>(last.match.substitutions);
}
BENCHMARK(BM_FullRecompute)->ArgNames({"n"})->Arg(64)->Arg(256);

void BM_InitialMaterialization(benchmark::State& state) {
  // The one-time cost the view pays up front (fixpoint + support counts),
  // for comparison with BM_FullRecompute on the same base.
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kTc);
  PredicateId edge = MustOk(symbols->LookupPredicate("edge"));
  Database edb = MakeChainEdb(symbols, edge, state.range(0));

  for (auto _ : state) {
    MaterializedView view =
        MustOk(MaterializedView::Create(program, edb));
    benchmark::DoNotOptimize(view.db());
  }
}
BENCHMARK(BM_InitialMaterialization)->ArgNames({"n"})->Arg(64)->Arg(256);

}  // namespace
}  // namespace bench
}  // namespace datalog

int main(int argc, char** argv) {
  return datalog::bench::BenchmarkMainWithJson(argc, argv,
                                               "BENCH_incr.json");
}
