// Experiment B3 (DESIGN.md): Section I's claim that minimization composes
// with the magic-set method -- "removing redundant parts can only speed up
// the computation". Bound queries over original vs minimized programs,
// both evaluated with the magic-sets rewrite.

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace bench {
namespace {

constexpr const char* kGuardedLinearTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- a(x, y), g(y, z), a(y, q).\n";  // a(y,q) redundant

void RunMagic(benchmark::State& state, bool optimize, GraphShape shape) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols, kGuardedLinearTc);
  if (optimize) {
    program = MustOk(MinimizeProgram(program));
    program = MustOk(OptimizeUnderEquivalence(program)).program;
  }
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({shape, n, 2 * n, 17}, a, &edb);
  Atom query = MustParseQuery(symbols, "?- g(0, x).");

  std::uint64_t substitutions = 0;
  std::size_t answers = 0;
  for (auto _ : state) {
    EvalStats stats;
    std::vector<Tuple> result = MustOk(
        AnswerQuery(program, edb, query, EvalMethod::kMagicSemiNaive, &stats));
    substitutions = stats.match.substitutions;
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["joins"] = static_cast<double>(substitutions);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_MagicChain_Original(benchmark::State& state) {
  RunMagic(state, /*optimize=*/false, GraphShape::kChain);
}
void BM_MagicChain_Optimized(benchmark::State& state) {
  RunMagic(state, /*optimize=*/true, GraphShape::kChain);
}
BENCHMARK(BM_MagicChain_Original)->RangeMultiplier(2)->Range(64, 1024);
BENCHMARK(BM_MagicChain_Optimized)->RangeMultiplier(2)->Range(64, 1024);

void BM_MagicRandom_Original(benchmark::State& state) {
  RunMagic(state, /*optimize=*/false, GraphShape::kRandom);
}
void BM_MagicRandom_Optimized(benchmark::State& state) {
  RunMagic(state, /*optimize=*/true, GraphShape::kRandom);
}
BENCHMARK(BM_MagicRandom_Original)->RangeMultiplier(2)->Range(64, 512);
BENCHMARK(BM_MagicRandom_Optimized)->RangeMultiplier(2)->Range(64, 512);

/// Magic vs plain semi-naive on the minimized program: the substrate's own
/// sanity series (bound queries should profit from magic).
void RunMethodComparison(benchmark::State& state, EvalMethod method) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(symbols,
                                     "g(x, z) :- a(x, z).\n"
                                     "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  // Many disjoint chains: a bound query touches only one.
  for (std::size_t chain = 0; chain < 16; ++chain) {
    for (std::size_t i = 0; i + 1 < n / 16; ++i) {
      std::size_t base = chain * (n / 16);
      edb.AddFact(a, {Value::Int(static_cast<std::int64_t>(base + i)),
                      Value::Int(static_cast<std::int64_t>(base + i + 1))});
    }
  }
  Atom query = MustParseQuery(symbols, "?- g(0, x).");
  for (auto _ : state) {
    std::vector<Tuple> result =
        MustOk(AnswerQuery(program, edb, query, method));
    benchmark::DoNotOptimize(result);
  }
}

void BM_BoundQuery_SemiNaive(benchmark::State& state) {
  RunMethodComparison(state, EvalMethod::kSemiNaive);
}
void BM_BoundQuery_Magic(benchmark::State& state) {
  RunMethodComparison(state, EvalMethod::kMagicSemiNaive);
}
void BM_BoundQuery_TabledTopDown(benchmark::State& state) {
  RunMethodComparison(state, EvalMethod::kTabledTopDown);
}
BENCHMARK(BM_BoundQuery_SemiNaive)->RangeMultiplier(2)->Range(128, 1024);
BENCHMARK(BM_BoundQuery_Magic)->RangeMultiplier(2)->Range(128, 1024);
BENCHMARK(BM_BoundQuery_TabledTopDown)->RangeMultiplier(2)->Range(128, 1024);

/// Supplementary vs classic magic on a rule with two intentional body
/// atoms (the case the supplementary chain exists for: the classic
/// rewrite's second magic rule re-joins the prefix).
void RunSupplementary(benchmark::State& state, bool supplementary) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, y), g(y, w), g(w, z).\n");
  PredicateId a = MustOk(symbols->LookupPredicate("a"));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, n, 2 * n, 29}, a, &edb);
  Atom query = MustParseQuery(symbols, "?- g(0, z).");
  MagicOptions options;
  options.supplementary = supplementary;
  MagicProgram magic = MustOk(MagicSetsTransform(program, query, options));

  std::uint64_t joins = 0;
  for (auto _ : state) {
    Database work(symbols);
    work.UnionWith(edb);
    EvalStats stats = MustOk(EvaluateSemiNaive(magic.program, &work));
    joins = stats.match.substitutions;
    benchmark::DoNotOptimize(work);
  }
  state.counters["joins"] = static_cast<double>(joins);
  state.counters["rules"] = static_cast<double>(magic.program.NumRules());
}

void BM_Magic_Classic(benchmark::State& state) {
  RunSupplementary(state, /*supplementary=*/false);
}
void BM_Magic_Supplementary(benchmark::State& state) {
  RunSupplementary(state, /*supplementary=*/true);
}
BENCHMARK(BM_Magic_Classic)->RangeMultiplier(2)->Range(32, 128);
BENCHMARK(BM_Magic_Supplementary)->RangeMultiplier(2)->Range(32, 128);

/// Same-generation over a complete binary tree: the canonical bound-query
/// separation between the three methods.
void RunSameGeneration(benchmark::State& state, EvalMethod method) {
  auto symbols = MakeSymbols();
  Program program = MustParseProgram(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n");
  PredicateId up = MustOk(symbols->LookupPredicate("up"));
  PredicateId flat = MustOk(symbols->LookupPredicate("flat"));
  PredicateId down = MustOk(symbols->LookupPredicate("down"));
  SameGenerationOptions options;
  options.depth = static_cast<std::size_t>(state.range(0));
  Database edb(symbols);
  std::size_t nodes = AddSameGenerationFacts(options, up, flat, down, &edb);
  // Query a leaf.
  Atom query = MustParseQuery(
      symbols, "?- sg(" + std::to_string(nodes - 1) + ", y).");
  for (auto _ : state) {
    std::vector<Tuple> result =
        MustOk(AnswerQuery(program, edb, query, method));
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_SameGen_SemiNaive(benchmark::State& state) {
  RunSameGeneration(state, EvalMethod::kSemiNaive);
}
void BM_SameGen_Magic(benchmark::State& state) {
  RunSameGeneration(state, EvalMethod::kMagicSemiNaive);
}
void BM_SameGen_TabledTopDown(benchmark::State& state) {
  RunSameGeneration(state, EvalMethod::kTabledTopDown);
}
BENCHMARK(BM_SameGen_SemiNaive)->DenseRange(4, 8, 2);
BENCHMARK(BM_SameGen_Magic)->DenseRange(4, 8, 2);
BENCHMARK(BM_SameGen_TabledTopDown)->DenseRange(4, 8, 2);

}  // namespace
}  // namespace bench
}  // namespace datalog
