file(REMOVE_RECURSE
  "CMakeFiles/bench_magic_sets.dir/bench_magic_sets.cc.o"
  "CMakeFiles/bench_magic_sets.dir/bench_magic_sets.cc.o.d"
  "bench_magic_sets"
  "bench_magic_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_magic_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
