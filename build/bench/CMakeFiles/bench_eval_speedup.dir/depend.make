# Empty dependencies file for bench_eval_speedup.
# This may be replaced when dependencies are built.
