file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_speedup.dir/bench_eval_speedup.cc.o"
  "CMakeFiles/bench_eval_speedup.dir/bench_eval_speedup.cc.o.d"
  "bench_eval_speedup"
  "bench_eval_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
