file(REMOVE_RECURSE
  "CMakeFiles/examples_smoke_test.dir/integration/examples_smoke_test.cc.o"
  "CMakeFiles/examples_smoke_test.dir/integration/examples_smoke_test.cc.o.d"
  "examples_smoke_test"
  "examples_smoke_test.pdb"
  "examples_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
