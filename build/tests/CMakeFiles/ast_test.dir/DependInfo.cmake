
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ast/atom_test.cc" "tests/CMakeFiles/ast_test.dir/ast/atom_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/atom_test.cc.o.d"
  "/root/repo/tests/ast/dependence_graph_test.cc" "tests/CMakeFiles/ast_test.dir/ast/dependence_graph_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/dependence_graph_test.cc.o.d"
  "/root/repo/tests/ast/parser_edge_test.cc" "tests/CMakeFiles/ast_test.dir/ast/parser_edge_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/parser_edge_test.cc.o.d"
  "/root/repo/tests/ast/parser_fuzz_test.cc" "tests/CMakeFiles/ast_test.dir/ast/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/ast/parser_test.cc" "tests/CMakeFiles/ast_test.dir/ast/parser_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/parser_test.cc.o.d"
  "/root/repo/tests/ast/pretty_print_test.cc" "tests/CMakeFiles/ast_test.dir/ast/pretty_print_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/pretty_print_test.cc.o.d"
  "/root/repo/tests/ast/program_test.cc" "tests/CMakeFiles/ast_test.dir/ast/program_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/program_test.cc.o.d"
  "/root/repo/tests/ast/rule_test.cc" "tests/CMakeFiles/ast_test.dir/ast/rule_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/rule_test.cc.o.d"
  "/root/repo/tests/ast/substitution_test.cc" "tests/CMakeFiles/ast_test.dir/ast/substitution_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/substitution_test.cc.o.d"
  "/root/repo/tests/ast/symbol_table_test.cc" "tests/CMakeFiles/ast_test.dir/ast/symbol_table_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/symbol_table_test.cc.o.d"
  "/root/repo/tests/ast/term_test.cc" "tests/CMakeFiles/ast_test.dir/ast/term_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/term_test.cc.o.d"
  "/root/repo/tests/ast/tgd_test.cc" "tests/CMakeFiles/ast_test.dir/ast/tgd_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/tgd_test.cc.o.d"
  "/root/repo/tests/ast/unify_test.cc" "tests/CMakeFiles/ast_test.dir/ast/unify_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/unify_test.cc.o.d"
  "/root/repo/tests/ast/validate_test.cc" "tests/CMakeFiles/ast_test.dir/ast/validate_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/validate_test.cc.o.d"
  "/root/repo/tests/ast/value_test.cc" "tests/CMakeFiles/ast_test.dir/ast/value_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
