
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/budget_test.cc" "tests/CMakeFiles/core_test.dir/core/budget_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budget_test.cc.o.d"
  "/root/repo/tests/core/chase_test.cc" "tests/CMakeFiles/core_test.dir/core/chase_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/chase_test.cc.o.d"
  "/root/repo/tests/core/constrained_test.cc" "tests/CMakeFiles/core_test.dir/core/constrained_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/constrained_test.cc.o.d"
  "/root/repo/tests/core/cq_test.cc" "tests/CMakeFiles/core_test.dir/core/cq_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cq_test.cc.o.d"
  "/root/repo/tests/core/cq_union_test.cc" "tests/CMakeFiles/core_test.dir/core/cq_union_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cq_union_test.cc.o.d"
  "/root/repo/tests/core/equivalence_optimizer_test.cc" "tests/CMakeFiles/core_test.dir/core/equivalence_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/equivalence_optimizer_test.cc.o.d"
  "/root/repo/tests/core/equivalence_test.cc" "tests/CMakeFiles/core_test.dir/core/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/equivalence_test.cc.o.d"
  "/root/repo/tests/core/freeze_test.cc" "tests/CMakeFiles/core_test.dir/core/freeze_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/freeze_test.cc.o.d"
  "/root/repo/tests/core/minimize_edge_test.cc" "tests/CMakeFiles/core_test.dir/core/minimize_edge_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/minimize_edge_test.cc.o.d"
  "/root/repo/tests/core/minimize_program_test.cc" "tests/CMakeFiles/core_test.dir/core/minimize_program_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/minimize_program_test.cc.o.d"
  "/root/repo/tests/core/minimize_stratified_test.cc" "tests/CMakeFiles/core_test.dir/core/minimize_stratified_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/minimize_stratified_test.cc.o.d"
  "/root/repo/tests/core/minimize_test.cc" "tests/CMakeFiles/core_test.dir/core/minimize_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/minimize_test.cc.o.d"
  "/root/repo/tests/core/model_containment_test.cc" "tests/CMakeFiles/core_test.dir/core/model_containment_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/model_containment_test.cc.o.d"
  "/root/repo/tests/core/nonrecursive_equivalence_test.cc" "tests/CMakeFiles/core_test.dir/core/nonrecursive_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/nonrecursive_equivalence_test.cc.o.d"
  "/root/repo/tests/core/pipeline_test.cc" "tests/CMakeFiles/core_test.dir/core/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "/root/repo/tests/core/preservation_test.cc" "tests/CMakeFiles/core_test.dir/core/preservation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/preservation_test.cc.o.d"
  "/root/repo/tests/core/relevance_test.cc" "tests/CMakeFiles/core_test.dir/core/relevance_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/relevance_test.cc.o.d"
  "/root/repo/tests/core/tgd_fuzz_test.cc" "tests/CMakeFiles/core_test.dir/core/tgd_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tgd_fuzz_test.cc.o.d"
  "/root/repo/tests/core/tgd_ops_test.cc" "tests/CMakeFiles/core_test.dir/core/tgd_ops_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tgd_ops_test.cc.o.d"
  "/root/repo/tests/core/unfold_test.cc" "tests/CMakeFiles/core_test.dir/core/unfold_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/unfold_test.cc.o.d"
  "/root/repo/tests/core/uniform_containment_test.cc" "tests/CMakeFiles/core_test.dir/core/uniform_containment_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/uniform_containment_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
