file(REMOVE_RECURSE
  "CMakeFiles/bench_smoke_test.dir/integration/bench_smoke_test.cc.o"
  "CMakeFiles/bench_smoke_test.dir/integration/bench_smoke_test.cc.o.d"
  "bench_smoke_test"
  "bench_smoke_test.pdb"
  "bench_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
