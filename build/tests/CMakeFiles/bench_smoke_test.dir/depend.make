# Empty dependencies file for bench_smoke_test.
# This may be replaced when dependencies are built.
