file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/eval/ablation_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/ablation_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/database_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/database_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/eval_stats_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/eval_stats_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/magic_sets_edge_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/magic_sets_edge_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/magic_sets_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/magic_sets_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/naive_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/naive_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/provenance_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/provenance_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/query_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/query_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/relation_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/relation_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/rule_matcher_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/rule_matcher_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/seminaive_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/seminaive_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/stratified_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/stratified_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/supplementary_magic_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/supplementary_magic_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/topdown_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/topdown_test.cc.o.d"
  "eval_test"
  "eval_test.pdb"
  "eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
