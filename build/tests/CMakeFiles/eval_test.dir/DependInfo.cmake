
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/ablation_test.cc" "tests/CMakeFiles/eval_test.dir/eval/ablation_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/ablation_test.cc.o.d"
  "/root/repo/tests/eval/database_test.cc" "tests/CMakeFiles/eval_test.dir/eval/database_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/database_test.cc.o.d"
  "/root/repo/tests/eval/eval_stats_test.cc" "tests/CMakeFiles/eval_test.dir/eval/eval_stats_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/eval_stats_test.cc.o.d"
  "/root/repo/tests/eval/magic_sets_edge_test.cc" "tests/CMakeFiles/eval_test.dir/eval/magic_sets_edge_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/magic_sets_edge_test.cc.o.d"
  "/root/repo/tests/eval/magic_sets_test.cc" "tests/CMakeFiles/eval_test.dir/eval/magic_sets_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/magic_sets_test.cc.o.d"
  "/root/repo/tests/eval/naive_test.cc" "tests/CMakeFiles/eval_test.dir/eval/naive_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/naive_test.cc.o.d"
  "/root/repo/tests/eval/provenance_test.cc" "tests/CMakeFiles/eval_test.dir/eval/provenance_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/provenance_test.cc.o.d"
  "/root/repo/tests/eval/query_test.cc" "tests/CMakeFiles/eval_test.dir/eval/query_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/query_test.cc.o.d"
  "/root/repo/tests/eval/relation_test.cc" "tests/CMakeFiles/eval_test.dir/eval/relation_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/relation_test.cc.o.d"
  "/root/repo/tests/eval/rule_matcher_test.cc" "tests/CMakeFiles/eval_test.dir/eval/rule_matcher_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/rule_matcher_test.cc.o.d"
  "/root/repo/tests/eval/seminaive_test.cc" "tests/CMakeFiles/eval_test.dir/eval/seminaive_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/seminaive_test.cc.o.d"
  "/root/repo/tests/eval/stratified_test.cc" "tests/CMakeFiles/eval_test.dir/eval/stratified_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/stratified_test.cc.o.d"
  "/root/repo/tests/eval/supplementary_magic_test.cc" "tests/CMakeFiles/eval_test.dir/eval/supplementary_magic_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/supplementary_magic_test.cc.o.d"
  "/root/repo/tests/eval/topdown_test.cc" "tests/CMakeFiles/eval_test.dir/eval/topdown_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/topdown_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
