
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/atom.cc" "src/CMakeFiles/datalog.dir/ast/atom.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/atom.cc.o.d"
  "/root/repo/src/ast/dependence_graph.cc" "src/CMakeFiles/datalog.dir/ast/dependence_graph.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/dependence_graph.cc.o.d"
  "/root/repo/src/ast/parser.cc" "src/CMakeFiles/datalog.dir/ast/parser.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/parser.cc.o.d"
  "/root/repo/src/ast/pretty_print.cc" "src/CMakeFiles/datalog.dir/ast/pretty_print.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/pretty_print.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/CMakeFiles/datalog.dir/ast/program.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/CMakeFiles/datalog.dir/ast/rule.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/rule.cc.o.d"
  "/root/repo/src/ast/substitution.cc" "src/CMakeFiles/datalog.dir/ast/substitution.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/substitution.cc.o.d"
  "/root/repo/src/ast/symbol_table.cc" "src/CMakeFiles/datalog.dir/ast/symbol_table.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/symbol_table.cc.o.d"
  "/root/repo/src/ast/tgd.cc" "src/CMakeFiles/datalog.dir/ast/tgd.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/tgd.cc.o.d"
  "/root/repo/src/ast/unify.cc" "src/CMakeFiles/datalog.dir/ast/unify.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/unify.cc.o.d"
  "/root/repo/src/ast/validate.cc" "src/CMakeFiles/datalog.dir/ast/validate.cc.o" "gcc" "src/CMakeFiles/datalog.dir/ast/validate.cc.o.d"
  "/root/repo/src/core/chase.cc" "src/CMakeFiles/datalog.dir/core/chase.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/chase.cc.o.d"
  "/root/repo/src/core/constrained.cc" "src/CMakeFiles/datalog.dir/core/constrained.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/constrained.cc.o.d"
  "/root/repo/src/core/cq.cc" "src/CMakeFiles/datalog.dir/core/cq.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/cq.cc.o.d"
  "/root/repo/src/core/equivalence.cc" "src/CMakeFiles/datalog.dir/core/equivalence.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/equivalence.cc.o.d"
  "/root/repo/src/core/equivalence_optimizer.cc" "src/CMakeFiles/datalog.dir/core/equivalence_optimizer.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/equivalence_optimizer.cc.o.d"
  "/root/repo/src/core/freeze.cc" "src/CMakeFiles/datalog.dir/core/freeze.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/freeze.cc.o.d"
  "/root/repo/src/core/minimize.cc" "src/CMakeFiles/datalog.dir/core/minimize.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/minimize.cc.o.d"
  "/root/repo/src/core/model_containment.cc" "src/CMakeFiles/datalog.dir/core/model_containment.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/model_containment.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/datalog.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/preservation.cc" "src/CMakeFiles/datalog.dir/core/preservation.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/preservation.cc.o.d"
  "/root/repo/src/core/relevance.cc" "src/CMakeFiles/datalog.dir/core/relevance.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/relevance.cc.o.d"
  "/root/repo/src/core/tgd.cc" "src/CMakeFiles/datalog.dir/core/tgd.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/tgd.cc.o.d"
  "/root/repo/src/core/unfold.cc" "src/CMakeFiles/datalog.dir/core/unfold.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/unfold.cc.o.d"
  "/root/repo/src/core/uniform_containment.cc" "src/CMakeFiles/datalog.dir/core/uniform_containment.cc.o" "gcc" "src/CMakeFiles/datalog.dir/core/uniform_containment.cc.o.d"
  "/root/repo/src/eval/database.cc" "src/CMakeFiles/datalog.dir/eval/database.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/database.cc.o.d"
  "/root/repo/src/eval/magic_sets.cc" "src/CMakeFiles/datalog.dir/eval/magic_sets.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/magic_sets.cc.o.d"
  "/root/repo/src/eval/naive.cc" "src/CMakeFiles/datalog.dir/eval/naive.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/naive.cc.o.d"
  "/root/repo/src/eval/provenance.cc" "src/CMakeFiles/datalog.dir/eval/provenance.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/provenance.cc.o.d"
  "/root/repo/src/eval/query.cc" "src/CMakeFiles/datalog.dir/eval/query.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/query.cc.o.d"
  "/root/repo/src/eval/relation.cc" "src/CMakeFiles/datalog.dir/eval/relation.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/relation.cc.o.d"
  "/root/repo/src/eval/rule_matcher.cc" "src/CMakeFiles/datalog.dir/eval/rule_matcher.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/rule_matcher.cc.o.d"
  "/root/repo/src/eval/seminaive.cc" "src/CMakeFiles/datalog.dir/eval/seminaive.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/seminaive.cc.o.d"
  "/root/repo/src/eval/stratified.cc" "src/CMakeFiles/datalog.dir/eval/stratified.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/stratified.cc.o.d"
  "/root/repo/src/eval/topdown.cc" "src/CMakeFiles/datalog.dir/eval/topdown.cc.o" "gcc" "src/CMakeFiles/datalog.dir/eval/topdown.cc.o.d"
  "/root/repo/src/util/interning.cc" "src/CMakeFiles/datalog.dir/util/interning.cc.o" "gcc" "src/CMakeFiles/datalog.dir/util/interning.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/datalog.dir/util/status.cc.o" "gcc" "src/CMakeFiles/datalog.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/datalog.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/datalog.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/graph_gen.cc" "src/CMakeFiles/datalog.dir/workload/graph_gen.cc.o" "gcc" "src/CMakeFiles/datalog.dir/workload/graph_gen.cc.o.d"
  "/root/repo/src/workload/program_gen.cc" "src/CMakeFiles/datalog.dir/workload/program_gen.cc.o" "gcc" "src/CMakeFiles/datalog.dir/workload/program_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
