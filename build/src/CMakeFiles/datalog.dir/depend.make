# Empty dependencies file for datalog.
# This may be replaced when dependencies are built.
