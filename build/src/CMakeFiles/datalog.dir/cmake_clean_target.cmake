file(REMOVE_RECURSE
  "libdatalog.a"
)
