# Empty compiler generated dependencies file for datalog-opt.
# This may be replaced when dependencies are built.
