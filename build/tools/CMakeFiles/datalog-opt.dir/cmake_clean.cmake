file(REMOVE_RECURSE
  "CMakeFiles/datalog-opt.dir/datalog_opt_cli.cc.o"
  "CMakeFiles/datalog-opt.dir/datalog_opt_cli.cc.o.d"
  "datalog-opt"
  "datalog-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
