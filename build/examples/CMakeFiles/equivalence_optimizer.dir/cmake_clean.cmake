file(REMOVE_RECURSE
  "CMakeFiles/equivalence_optimizer.dir/equivalence_optimizer.cpp.o"
  "CMakeFiles/equivalence_optimizer.dir/equivalence_optimizer.cpp.o.d"
  "equivalence_optimizer"
  "equivalence_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
