# Empty compiler generated dependencies file for equivalence_optimizer.
# This may be replaced when dependencies are built.
