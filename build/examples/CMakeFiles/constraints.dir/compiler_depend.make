# Empty compiler generated dependencies file for constraints.
# This may be replaced when dependencies are built.
