file(REMOVE_RECURSE
  "CMakeFiles/constraints.dir/constraints.cpp.o"
  "CMakeFiles/constraints.dir/constraints.cpp.o.d"
  "constraints"
  "constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
