file(REMOVE_RECURSE
  "CMakeFiles/access_control.dir/access_control.cpp.o"
  "CMakeFiles/access_control.dir/access_control.cpp.o.d"
  "access_control"
  "access_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
